//! The campaign matrix: (scenario × seed × size × load multiplier)
//! cells, like the fault campaign one layer up the stack. Each cell runs
//! [`run_cell`] and carries its own repro
//! command; the matrix folds into the schema-v5 `capacity` section of
//! the bench report — per scenario, the max sustainable load at the
//! scenario's p999 SLO target, found by a deterministic load-multiplier
//! sweep.

use std::fmt::Write as _;

use des::{ms, us};
use obs::report::{BenchReport, CapacityCell, CapacityScenario};

use crate::arrivals::ServiceTime;
use crate::cell::{run_cell, CellOutcome};
use crate::plan::{Shape, Sidecar, WorkloadPlan};

/// Default seeds of the full matrix.
pub const SEEDS: [u64; 3] = [1, 7, 42];
/// Default body sizes of the full matrix, bytes.
pub const SIZES: [usize; 2] = [64, 512];
/// Default load-multiplier ladder; the knee of every scenario is placed
/// inside it, so the sweep's sustained/unsustained boundary is a real
/// measurement, not a foregone conclusion.
pub const MULTS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];

/// Shed fraction above which a rung no longer counts as sustained, even
/// when its latency target holds (the completions that did happen are
/// not the offered load).
pub const SHED_SUSTAIN_FRACTION: f64 = 0.05;

/// The six scenario families of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// N→1 incast: every channel of every node at one server.
    Incast,
    /// Skewed fan-in: most nodes pinned to one hot server of two.
    Hotspot,
    /// Synchronized storms: all channels fire at the same instants.
    Burst,
    /// Incast plus an MPI unexpected-queue flood on the same ring.
    UnexpectedFlood,
    /// Long-tail stragglers: a periodically slow consumer.
    Straggler,
    /// Incast plus MPI ping-pong traffic on the same ring.
    Mixed,
}

/// Every scenario family, matrix order.
pub const KINDS: [WorkloadKind; 6] = [
    WorkloadKind::Incast,
    WorkloadKind::Hotspot,
    WorkloadKind::Burst,
    WorkloadKind::UnexpectedFlood,
    WorkloadKind::Straggler,
    WorkloadKind::Mixed,
];

impl WorkloadKind {
    /// The scenario id used in reports, filters, and repro commands.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Incast => "incast",
            WorkloadKind::Hotspot => "hotspot",
            WorkloadKind::Burst => "burst",
            WorkloadKind::UnexpectedFlood => "unexpected_flood",
            WorkloadKind::Straggler => "straggler",
            WorkloadKind::Mixed => "mixed",
        }
    }

    /// Parse a scenario id (the `WORKLOAD_KIND` filter).
    pub fn from_name(name: &str) -> Option<Self> {
        KINDS.into_iter().find(|k| k.name() == name)
    }

    /// The scripted plan of one (kind, seed, size) scenario. Rates are
    /// placed against the ~50 kreq/s service ceiling (20 µs mean
    /// service) so the default ladder straddles each scenario's knee,
    /// and the p999 targets sit one log-histogram bucket (the
    /// histograms quantize at ×2) above each scenario's nominal-load
    /// envelope — the sweep then finds the knee inside the ladder.
    pub fn plan(self, seed: u64, size: usize) -> WorkloadPlan {
        let base = WorkloadPlan::new(seed).body_bytes(size);
        let plan = match self {
            // 72 channels × 400 Hz = 28.8 kreq/s at x1: ~0.6 utilization,
            // deep overload at x4.
            WorkloadKind::Incast => base
                .clients(4, 18)
                .window(ms(5), Shape::Poisson { rate_hz: 400.0 })
                .window(ms(1), Shape::Off)
                .p999_target(1_600.0),
            // Three of four nodes pinned to server 0: the hot server
            // carries 54 channels × 500 Hz while the cold one idles.
            WorkloadKind::Hotspot => base
                .clients(4, 18)
                .servers(2)
                .hot_nodes(3)
                .window(ms(5), Shape::Poisson { rate_hz: 500.0 })
                .window(ms(1), Shape::Off)
                .p999_target(1_600.0),
            // 24 channels × burst 2 every 2 ms: a 48-message storm per
            // boundary at x1 (~1 ms to drain), growing with the
            // multiplier while the boundaries stay put.
            WorkloadKind::Burst => base
                .clients(4, 6)
                .window(
                    ms(6),
                    Shape::SyncBurst {
                        period: ms(2),
                        burst: 2,
                    },
                )
                .window(ms(1), Shape::Off)
                .p999_target(1_600.0),
            // Background incast while an MPI flood races the floodee's
            // posted receives on the two sidecar ranks.
            WorkloadKind::UnexpectedFlood => base
                .clients(3, 16)
                .window(ms(4), Shape::Poisson { rate_hz: 300.0 })
                .window(ms(1), Shape::Off)
                .sidecar(Sidecar::UnexpectedFlood {
                    messages: 24,
                    prepost: 6,
                    at: ms(1),
                    post_delay: us(1_500),
                })
                .p999_target(1_600.0),
            // Every 16th dispatch takes 600 µs (mean 51.5 µs): the SLO
            // is looser because the straggler itself sits in the p999.
            WorkloadKind::Straggler => base
                .clients(4, 18)
                .service(ServiceTime::LongTail {
                    ns: 15_000,
                    slow_ns: 600_000,
                    slow_every: 16,
                })
                .window(ms(6), Shape::Poisson { rate_hz: 150.0 })
                .window(ms(2), Shape::Off)
                .p999_target(3_200.0),
            // Incast with MPI ping-pong rounds riding the same ring.
            WorkloadKind::Mixed => base
                .clients(3, 16)
                .window(ms(5), Shape::Poisson { rate_hz: 350.0 })
                .window(ms(1), Shape::Off)
                .sidecar(Sidecar::PingPong { rounds: 40 })
                .p999_target(1_600.0),
        };
        // The targets above are the 64-byte baseline; the ring transfer
        // dominates large-body latency, so the SLO scales with payload.
        let scale = (size as f64 / 64.0).max(1.0);
        let target = plan.p999_target_us * scale;
        plan.p999_target(target)
    }
}

/// Which cells a campaign run covers.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Scenario families to run.
    pub kinds: Vec<WorkloadKind>,
    /// Seeds per scenario.
    pub seeds: Vec<u64>,
    /// Body sizes per scenario.
    pub sizes: Vec<usize>,
    /// The load-multiplier ladder.
    pub mults: Vec<f64>,
}

impl CampaignConfig {
    /// The full CI matrix: 6 kinds × 3 seeds × 2 sizes × 4 multipliers.
    pub fn full() -> Self {
        CampaignConfig {
            kinds: KINDS.to_vec(),
            seeds: SEEDS.to_vec(),
            sizes: SIZES.to_vec(),
            mults: MULTS.to_vec(),
        }
    }

    /// The smoke matrix: every kind once per ladder end.
    pub fn quick() -> Self {
        CampaignConfig {
            kinds: KINDS.to_vec(),
            seeds: vec![1],
            sizes: vec![64],
            mults: vec![1.0, 4.0],
        }
    }

    /// Narrow the matrix by the single-cell repro environment:
    /// `WORKLOAD_KIND`, `WORKLOAD_SEED`, `WORKLOAD_SIZE`,
    /// `WORKLOAD_LOAD`. Unknown filter values panic (a repro command
    /// that silently matches nothing is worse than a crash).
    pub fn filtered_by_env(mut self) -> Self {
        if let Ok(k) = std::env::var("WORKLOAD_KIND") {
            let kind = WorkloadKind::from_name(&k)
                .unwrap_or_else(|| panic!("WORKLOAD_KIND '{k}' is not a scenario id"));
            self.kinds.retain(|&x| x == kind);
        }
        if let Ok(s) = std::env::var("WORKLOAD_SEED") {
            let seed: u64 = s
                .parse()
                .expect("WORKLOAD_SEED must be an unsigned integer");
            self.seeds.retain(|&x| x == seed);
            if self.seeds.is_empty() {
                self.seeds = vec![seed];
            }
        }
        if let Ok(s) = std::env::var("WORKLOAD_SIZE") {
            let size: usize = s
                .parse()
                .expect("WORKLOAD_SIZE must be an unsigned integer");
            self.sizes.retain(|&x| x == size);
            if self.sizes.is_empty() {
                self.sizes = vec![size];
            }
        }
        if let Ok(s) = std::env::var("WORKLOAD_LOAD") {
            let mult: f64 = s.parse().expect("WORKLOAD_LOAD must be a load multiplier");
            self.mults.retain(|&x| (x - mult).abs() < 1e-9);
            if self.mults.is_empty() {
                self.mults = vec![mult];
            }
        }
        self
    }
}

/// One executed campaign cell.
#[derive(Debug)]
pub struct CampaignCell {
    /// Scenario family.
    pub kind: WorkloadKind,
    /// Seed of the cell.
    pub seed: u64,
    /// Body size of the cell, bytes.
    pub size: usize,
    /// Load multiplier of the cell.
    pub mult: f64,
    /// The plan's one-line description.
    pub scenario: String,
    /// The scenario's p999 SLO target, µs.
    pub p999_target_us: f64,
    /// Everything the executor measured.
    pub outcome: CellOutcome,
    /// Host wall-clock time the cell took, milliseconds.
    pub wall_ms: f64,
}

impl CampaignCell {
    /// The single-cell repro command.
    pub fn repro(&self) -> String {
        format!(
            "WORKLOAD_KIND={} WORKLOAD_SEED={} WORKLOAD_SIZE={} WORKLOAD_LOAD={} \
             cargo run --release -p workload --bin workload-campaign",
            self.kind.name(),
            self.seed,
            self.size,
            self.mult
        )
    }

    /// What limited this rung: `"violation"`, `"latency"`, `"shed"`, or
    /// `"none"` (sustained).
    pub fn limited_by(&self) -> &'static str {
        if !self.outcome.violations.is_empty() {
            "violation"
        } else if self.outcome.p999_us() > self.p999_target_us {
            "latency"
        } else if self.outcome.shed_fraction() > SHED_SUSTAIN_FRACTION {
            "shed"
        } else {
            "none"
        }
    }

    /// Whether the rung sustained its load within the scenario's SLO.
    pub fn sustained(&self) -> bool {
        self.limited_by() == "none"
    }

    /// One line per cell in the campaign log.
    pub fn summary(&self) -> String {
        format!(
            "[{} seed={} size={} x{}] offered {:.0}/s completed {:.0}/s \
             p999 {:.0}us sheds {:.0}/s {} ({:.0} ms)",
            self.kind.name(),
            self.seed,
            self.size,
            self.mult,
            self.outcome.offered_hz(),
            self.outcome.throughput_hz(),
            self.outcome.p999_us(),
            self.outcome.sheds_per_sec(),
            self.limited_by(),
            self.wall_ms,
        )
    }
}

/// An executed campaign.
#[derive(Debug)]
pub struct CampaignResult {
    /// Every cell, matrix order.
    pub cells: Vec<CampaignCell>,
}

impl CampaignResult {
    /// Cells with invariant violations.
    pub fn violated(&self) -> Vec<&CampaignCell> {
        self.cells
            .iter()
            .filter(|c| !c.outcome.violations.is_empty())
            .collect()
    }

    /// The `wall_ms`-slowest cells, up to `n`.
    pub fn slowest(&self, n: usize) -> Vec<&CampaignCell> {
        let mut by_wall: Vec<&CampaignCell> = self.cells.iter().collect();
        by_wall.sort_by(|a, b| b.wall_ms.total_cmp(&a.wall_ms));
        by_wall.truncate(n);
        by_wall
    }

    /// Fold the matrix into the schema-v5 capacity section: per
    /// (scenario, size), the max sustainable offered load at the
    /// scenario's p999 target. A rung counts as sustainable only when
    /// **every seed** at that multiplier sustained — the figure is the
    /// conservative envelope, not the luckiest seed.
    pub fn capacity(&self) -> Vec<CapacityScenario> {
        let mut out = Vec::new();
        for kind in KINDS {
            let mut sizes: Vec<usize> = self
                .cells
                .iter()
                .filter(|c| c.kind == kind)
                .map(|c| c.size)
                .collect();
            sizes.sort_unstable();
            sizes.dedup();
            for size in sizes {
                let group: Vec<&CampaignCell> = self
                    .cells
                    .iter()
                    .filter(|c| c.kind == kind && c.size == size)
                    .collect();
                let mut mults: Vec<f64> = group.iter().map(|c| c.mult).collect();
                mults.sort_by(f64::total_cmp);
                mults.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
                let mut best: Option<(f64, f64)> = None; // (mult, mean offered_hz)
                for &m in &mults {
                    let rung: Vec<&&CampaignCell> =
                        group.iter().filter(|c| (c.mult - m).abs() < 1e-9).collect();
                    if rung.iter().all(|c| c.sustained()) {
                        let offered = rung.iter().map(|c| c.outcome.offered_hz()).sum::<f64>()
                            / rung.len() as f64;
                        if best.is_none_or(|(bm, _)| m > bm) {
                            best = Some((m, offered));
                        }
                    }
                }
                out.push(CapacityScenario {
                    scenario: kind.name().to_string(),
                    size,
                    p999_target_us: group[0].p999_target_us,
                    max_sustainable_hz: best.map_or(0.0, |(_, hz)| hz),
                    max_sustainable_mult: best.map_or(0.0, |(m, _)| m),
                    cells: group
                        .iter()
                        .map(|c| CapacityCell {
                            seed: c.seed,
                            mult: c.mult,
                            offered_hz: c.outcome.offered_hz(),
                            completed_hz: c.outcome.throughput_hz(),
                            p999_us: c.outcome.p999_us(),
                            sheds_per_sec: c.outcome.sheds_per_sec(),
                            violations: c.outcome.violations.len() as u64,
                            limited_by: c.limited_by().to_string(),
                        })
                        .collect(),
                });
            }
        }
        out
    }

    /// The full schema-v5 report document.
    pub fn to_report(&self, generated_by: &str) -> BenchReport {
        BenchReport {
            generated_by: generated_by.to_string(),
            capacity: self.capacity(),
            ..BenchReport::default()
        }
    }

    /// The violation digest the campaign fails with: every violated
    /// cell's findings plus its repro command.
    pub fn violation_digest(&self) -> Option<String> {
        let violating = self.violated();
        if violating.is_empty() {
            return None;
        }
        let mut msg = String::from("workload-campaign invariant violations:\n");
        for c in violating {
            for v in &c.outcome.violations {
                writeln!(
                    msg,
                    "  [{} seed={} size={} x{}] {v}\n    repro: {}",
                    c.kind.name(),
                    c.seed,
                    c.size,
                    c.mult,
                    c.repro()
                )
                .unwrap();
            }
        }
        Some(msg)
    }
}

/// Run the matrix. Each cell prints its one-line summary (and its repro
/// command) as it completes.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignResult {
    let mut cells = Vec::new();
    for &kind in &cfg.kinds {
        for &seed in &cfg.seeds {
            for &size in &cfg.sizes {
                let plan = kind.plan(seed, size);
                for &mult in &cfg.mults {
                    let label = format!(
                        "workload_{}_seed{}_size{}_x{}",
                        kind.name(),
                        seed,
                        size,
                        mult
                    );
                    let start = std::time::Instant::now();
                    let outcome = run_cell(&plan, mult, &label);
                    let cell = CampaignCell {
                        kind,
                        seed,
                        size,
                        mult,
                        scenario: plan.describe(),
                        p999_target_us: plan.p999_target_us,
                        outcome,
                        wall_ms: start.elapsed().as_secs_f64() * 1e3,
                    };
                    println!("{}", cell.summary());
                    println!("    repro: {}", cell.repro());
                    cells.push(cell);
                }
            }
        }
    }
    CampaignResult { cells }
}
