//! The workload DSL: a [`WorkloadPlan`] is pure data — scripted arrival
//! windows, a service model, a server/hot-spot topology, and an optional
//! MPI sidecar — mirroring the `FaultPlan` DSL one layer down. A plan
//! plus a load multiplier pins an entire cell: the same (plan, mult)
//! replays identically, which is what turns "a campaign cell violated an
//! invariant" into a one-command repro.
//!
//! ```
//! use des::ms;
//! use workload::{Shape, ServiceTime, Sidecar, WorkloadPlan};
//!
//! let plan = WorkloadPlan::new(42)
//!     .clients(4, 24)
//!     .servers(2)
//!     .hot_nodes(3)
//!     .body_bytes(64)
//!     .service(ServiceTime::Exp { mean_ns: 20_000 })
//!     .window(ms(4), Shape::Poisson { rate_hz: 400.0 })
//!     .window(ms(1), Shape::Off)
//!     .sidecar(Sidecar::PingPong { rounds: 40 });
//! assert!(plan.describe().starts_with("seed=42"));
//! ```

use des::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::arrivals::ServiceTime;

/// Arrival shape of one scripted window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// No arrivals (quiesce/drain window).
    Off,
    /// Independent memoryless arrivals per channel at `rate_hz`.
    Poisson {
        /// Mean arrivals per second per channel.
        rate_hz: f64,
    },
    /// Synchronized storms: **every channel on every node** fires
    /// `burst` back-to-back requests at each period boundary, starting
    /// at the window's first instant. This is the flag/billboard-path
    /// stress the NIC-collectives line of work motivates: all sources
    /// arrive in the same service quantum.
    SyncBurst {
        /// Boundary spacing, nanoseconds.
        period: Time,
        /// Requests per channel per boundary.
        burst: u32,
    },
}

/// Optional MPI traffic riding the same ring on two dedicated ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sidecar {
    /// No sidecar ranks.
    None,
    /// An unexpected-queue flood: the flooder rank blasts `messages`
    /// eager sends at `at`, racing the floodee's posted receives — only
    /// `prepost` receives are posted in advance, so the rest park in
    /// the ADI unexpected queue until the floodee posts the remainder
    /// `post_delay` after the flood. The cell's invariant: residency
    /// peaks at exactly the un-preposted count and **fully drains**.
    UnexpectedFlood {
        /// Total eager messages in the flood.
        messages: u32,
        /// Receives posted before the flood (matched on arrival).
        prepost: u32,
        /// Virtual time the flood starts.
        at: Time,
        /// Delay from flood start to posting the remaining receives.
        post_delay: Time,
    },
    /// A ping-pong pair: `rounds` round trips of body-sized messages.
    /// The mixed-traffic invariant: MPI progresses to completion while
    /// the RPC side serves its open-loop load on the same ring.
    PingPong {
        /// Round trips to complete.
        rounds: u32,
    },
}

/// One scripted arrival window (consecutive; durations accumulate).
#[derive(Debug, Clone, Copy)]
pub struct Window {
    /// Window length, nanoseconds.
    pub dur: Time,
    /// Arrival shape inside the window.
    pub shape: Shape,
}

/// A seed-deterministic scripted workload. See the module docs.
#[derive(Debug, Clone)]
pub struct WorkloadPlan {
    seed: u64,
    /// Client nodes (each gets its own ring rank).
    pub client_nodes: usize,
    /// Channels (independent logical clients) per client node.
    pub channels_per_node: u32,
    /// Per-channel credit grant; arrivals beyond it shed.
    pub credits_per_channel: u32,
    /// Server ranks (ranks `0..servers`).
    pub servers: usize,
    /// Client nodes pinned to server 0 (the hotspot); the rest
    /// round-robin over all servers. 0 = no pinning.
    pub hot_nodes: usize,
    /// Request/reply body size, bytes.
    pub body_bytes: usize,
    /// Percentage of requests posted high-priority (0–100).
    pub high_share_pct: u32,
    /// Server-side service model.
    pub service: ServiceTime,
    /// Scripted arrival windows, in order.
    pub windows: Vec<Window>,
    /// Optional MPI sidecar on two extra ranks.
    pub sidecar: Sidecar,
    /// Server buffer pool (bounds queue residency).
    pub pool: usize,
    /// Server anti-starvation bound (see `rpc::RpcConfig`).
    pub max_high_streak: u32,
    /// The scenario's SLO: the p999 service-latency target (µs) the
    /// capacity sweep finds the max sustainable load against.
    pub p999_target_us: f64,
}

impl WorkloadPlan {
    /// An empty plan under `seed`: 1 server, no clients, no windows.
    pub fn new(seed: u64) -> Self {
        WorkloadPlan {
            seed,
            client_nodes: 0,
            channels_per_node: 1,
            credits_per_channel: 4,
            servers: 1,
            hot_nodes: 0,
            body_bytes: 64,
            high_share_pct: 20,
            service: ServiceTime::Exp { mean_ns: 20_000 },
            windows: Vec::new(),
            sidecar: Sidecar::None,
            pool: 24,
            max_high_streak: 8,
            p999_target_us: 400.0,
        }
    }

    /// The seed labelling the scenario (drives every RNG stream).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `nodes` client nodes hosting `channels` channels each.
    pub fn clients(mut self, nodes: usize, channels: u32) -> Self {
        assert!(channels >= 1, "a client node needs at least one channel");
        self.client_nodes = nodes;
        self.channels_per_node = channels;
        self
    }

    /// Per-channel credit grant.
    pub fn credits(mut self, per_channel: u32) -> Self {
        self.credits_per_channel = per_channel;
        self
    }

    /// Number of server ranks.
    pub fn servers(mut self, servers: usize) -> Self {
        assert!(servers >= 1, "a workload needs at least one server");
        self.servers = servers;
        self
    }

    /// Pin the first `hot` client nodes to server 0 (hotspot skew).
    pub fn hot_nodes(mut self, hot: usize) -> Self {
        self.hot_nodes = hot;
        self
    }

    /// Request/reply body size.
    pub fn body_bytes(mut self, bytes: usize) -> Self {
        self.body_bytes = bytes;
        self
    }

    /// Share of high-priority requests, percent.
    pub fn high_share(mut self, pct: u32) -> Self {
        assert!(pct <= 100, "high share is a percentage");
        self.high_share_pct = pct;
        self
    }

    /// Server-side service model.
    pub fn service(mut self, service: ServiceTime) -> Self {
        self.service = service;
        self
    }

    /// Append a scripted arrival window.
    pub fn window(mut self, dur: Time, shape: Shape) -> Self {
        assert!(dur > 0, "a window needs a positive duration");
        self.windows.push(Window { dur, shape });
        self
    }

    /// Attach the MPI sidecar.
    pub fn sidecar(mut self, sidecar: Sidecar) -> Self {
        self.sidecar = sidecar;
        self
    }

    /// Server buffer pool size.
    pub fn pool(mut self, pool: usize) -> Self {
        self.pool = pool;
        self
    }

    /// The scenario's p999 SLO target, µs.
    pub fn p999_target(mut self, us: f64) -> Self {
        self.p999_target_us = us;
        self
    }

    /// End of the scripted arrival span, nanoseconds.
    pub fn windows_end(&self) -> Time {
        self.windows.iter().map(|w| w.dur).sum()
    }

    /// The server rank `node_idx` (0-based client node index) sends to:
    /// the first [`WorkloadPlan::hot_nodes`] nodes are pinned to server
    /// 0, the rest round-robin over every server.
    pub fn server_of(&self, node_idx: usize) -> usize {
        if node_idx < self.hot_nodes {
            0
        } else {
            node_idx % self.servers
        }
    }

    /// Total ring ranks a cell of this plan occupies.
    pub fn nprocs(&self) -> usize {
        self.servers + self.client_nodes + if self.sidecar == Sidecar::None { 0 } else { 2 }
    }

    /// Precompute the arrival times of one channel at load multiplier
    /// `mult`. Deterministic in (seed, node, channel, mult) regardless
    /// of how other channels interleave; [`Shape::SyncBurst`] windows
    /// ignore the RNG entirely, so their storms land at the same
    /// instants on every channel of every node.
    pub fn channel_arrivals(&self, node_idx: usize, channel: u32, mult: f64) -> Vec<Time> {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ (node_idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (channel as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        let mut out = Vec::new();
        let mut start: Time = 0;
        for w in &self.windows {
            let end = start + w.dur;
            match w.shape {
                Shape::Off => {}
                Shape::Poisson { rate_hz } => {
                    let rate = rate_hz * mult;
                    let mut t = start;
                    loop {
                        let u: f64 = rng.gen();
                        t += ((-(1.0 - u).ln() / rate) * 1e9) as Time;
                        if t >= end {
                            break;
                        }
                        out.push(t);
                    }
                }
                Shape::SyncBurst { period, burst } => {
                    let burst = scaled_burst(burst, mult);
                    let mut boundary = start;
                    while boundary < end {
                        for _ in 0..burst {
                            out.push(boundary);
                        }
                        boundary = boundary.saturating_add(period);
                    }
                }
            }
            start = end;
        }
        out
    }

    /// One-line rendering for reports and repro messages, e.g.
    /// `seed=7 clients=4x24 servers=2 hot=3 body=64 svc=exp(20000)
    /// w=[poisson(400)x4000000] sidecar=pingpong(40)`.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "seed={} clients={}x{} servers={}",
            self.seed, self.client_nodes, self.channels_per_node, self.servers
        );
        if self.hot_nodes > 0 {
            write!(out, " hot={}", self.hot_nodes).unwrap();
        }
        write!(out, " body={}", self.body_bytes).unwrap();
        match self.service {
            ServiceTime::Fixed { ns } => write!(out, " svc=fixed({ns})").unwrap(),
            ServiceTime::Exp { mean_ns } => write!(out, " svc=exp({mean_ns})").unwrap(),
            ServiceTime::LongTail {
                ns,
                slow_ns,
                slow_every,
            } => write!(out, " svc=longtail({ns},{slow_ns},every{slow_every})").unwrap(),
        }
        out.push_str(" w=[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match w.shape {
                Shape::Off => write!(out, "off x{}", w.dur).unwrap(),
                Shape::Poisson { rate_hz } => {
                    write!(out, "poisson({rate_hz})x{}", w.dur).unwrap();
                }
                Shape::SyncBurst { period, burst } => {
                    write!(out, "syncburst({burst}@{period})x{}", w.dur).unwrap();
                }
            }
        }
        out.push(']');
        match self.sidecar {
            Sidecar::None => {}
            Sidecar::UnexpectedFlood {
                messages,
                prepost,
                at,
                post_delay,
            } => {
                write!(
                    out,
                    " sidecar=flood({messages},pre{prepost},@{at}+{post_delay})"
                )
                .unwrap();
            }
            Sidecar::PingPong { rounds } => write!(out, " sidecar=pingpong({rounds})").unwrap(),
        }
        out
    }
}

/// Burst size at a load multiplier: the storm grows, the boundaries
/// stay put — the sweep compares storms of different magnitude landing
/// at identical instants.
pub fn scaled_burst(burst: u32, mult: f64) -> u32 {
    ((burst as f64 * mult).round() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::{ms, us};

    fn base() -> WorkloadPlan {
        WorkloadPlan::new(7)
            .clients(2, 4)
            .window(ms(2), Shape::Poisson { rate_hz: 5_000.0 })
            .window(ms(1), Shape::Off)
    }

    #[test]
    fn arrivals_are_deterministic_and_confined_to_windows() {
        let plan = base();
        let a = plan.channel_arrivals(0, 0, 1.0);
        let b = plan.channel_arrivals(0, 0, 1.0);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "5 kHz over 2 ms should arrive");
        assert!(
            a.iter().all(|&t| t < ms(2)),
            "no arrivals in the Off window"
        );
        // A different channel gets a de-phased stream.
        assert_ne!(a, plan.channel_arrivals(0, 1, 1.0));
    }

    #[test]
    fn load_multiplier_scales_poisson_counts() {
        let plan = base();
        let n1: usize = (0..4).map(|c| plan.channel_arrivals(0, c, 1.0).len()).sum();
        let n4: usize = (0..4).map(|c| plan.channel_arrivals(0, c, 4.0).len()).sum();
        assert!(
            n4 as f64 > 2.5 * n1 as f64,
            "x4 should offer ~4x the arrivals ({n1} -> {n4})"
        );
    }

    #[test]
    fn sync_bursts_align_across_nodes_and_channels() {
        let plan = WorkloadPlan::new(3).clients(3, 4).window(
            ms(4),
            Shape::SyncBurst {
                period: ms(1),
                burst: 2,
            },
        );
        let reference = plan.channel_arrivals(0, 0, 1.0);
        assert_eq!(
            reference,
            vec![0, 0, ms(1), ms(1), ms(2), ms(2), ms(3), ms(3)]
        );
        for node in 0..3 {
            for ch in 0..4 {
                assert_eq!(plan.channel_arrivals(node, ch, 1.0), reference);
            }
        }
        // The multiplier grows the storm, not the schedule.
        let x2 = plan.channel_arrivals(1, 2, 2.0);
        assert_eq!(x2.len(), 16);
        assert_eq!(x2[3], 0);
        assert_eq!(x2[4], ms(1));
    }

    #[test]
    fn scaled_burst_rounds_and_floors_at_one() {
        assert_eq!(scaled_burst(2, 0.5), 1);
        assert_eq!(scaled_burst(2, 1.0), 2);
        assert_eq!(scaled_burst(2, 2.0), 4);
        assert_eq!(scaled_burst(1, 0.25), 1);
    }

    #[test]
    fn hotspot_assignment_pins_then_round_robins() {
        let plan = WorkloadPlan::new(1).clients(4, 1).servers(2).hot_nodes(3);
        assert_eq!(plan.server_of(0), 0);
        assert_eq!(plan.server_of(1), 0);
        assert_eq!(plan.server_of(2), 0);
        assert_eq!(plan.server_of(3), 1);
        assert_eq!(plan.nprocs(), 6);
    }

    #[test]
    fn describe_renders_the_whole_scenario() {
        let plan = WorkloadPlan::new(7)
            .clients(2, 8)
            .servers(2)
            .hot_nodes(1)
            .body_bytes(512)
            .service(ServiceTime::Fixed { ns: 10_000 })
            .window(
                us(500),
                Shape::SyncBurst {
                    period: us(100),
                    burst: 3,
                },
            )
            .sidecar(Sidecar::PingPong { rounds: 5 });
        assert_eq!(
            plan.describe(),
            "seed=7 clients=2x8 servers=2 hot=1 body=512 svc=fixed(10000) \
             w=[syncburst(3@100000)x500000] sidecar=pingpong(5)"
        );
    }

    #[test]
    fn sidecar_ranks_extend_nprocs() {
        let plan = WorkloadPlan::new(1)
            .clients(2, 1)
            .sidecar(Sidecar::UnexpectedFlood {
                messages: 8,
                prepost: 2,
                at: us(10),
                post_delay: us(50),
            });
        assert_eq!(plan.nprocs(), 5);
        assert!(plan.describe().contains("flood(8,pre2"));
    }
}
