//! The disabled recorder must be genuinely free: no allocations and no
//! recorded state, so leaving instrumentation compiled into every layer
//! cannot perturb a simulation that never enables it.
//!
//! Allocation counting is per-thread (a const-initialized thread-local
//! bumped by the wrapping global allocator), so harness threads — the
//! libtest main thread buffering output, timers — cannot pollute the
//! count. Everything still runs inside ONE test function: the counter
//! only sees the thread it runs on.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use obs::{Layer, Recorder, Stage};

struct CountingAlloc;

std::thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Allocations observed on the calling thread.
fn allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_recorder_never_allocates() {
    let rec = Recorder::new();
    assert!(!rec.is_enabled());

    let before = allocs();
    for t in 0..10_000u64 {
        rec.span_enter(t, 0, Layer::Mpi, "send");
        rec.count(t, 1, "ring.packets", 3);
        rec.span_exit(t + 1, 0, Layer::Mpi, "send");
    }
    let after = allocs();

    assert_eq!(
        after - before,
        0,
        "disabled recording calls must not allocate"
    );
    assert!(
        rec.is_empty(),
        "disabled recording calls must record nothing"
    );

    // Message-lifecycle instrumentation: minting ids, publishing them on
    // the per-node side-channels, and recording checkpoints must all stay
    // allocation-free while disabled. `lifecycle` always feeds the
    // preallocated flight ring; `lifecycle_hot` (the per-hop variant)
    // must be a complete no-op.
    let hot_before = rec.flight().recorded();
    let before = allocs();
    for t in 0..10_000u64 {
        let id = rec.mint_trace_id(3);
        rec.set_current_trace(3, id);
        assert_eq!(rec.current_trace(3), id);
        rec.set_current_rx(5, id);
        assert_eq!(rec.current_rx(5), id);
        rec.lifecycle(t, 3, id, Stage::SendEnter, 64);
        rec.lifecycle_hot(t, 3, id, Stage::RingHop, 1);
    }
    let after = allocs();

    assert_eq!(
        after - before,
        0,
        "disabled lifecycle instrumentation must not allocate"
    );
    assert!(
        rec.is_empty(),
        "disabled lifecycle calls must append no log events"
    );
    assert_eq!(
        rec.flight().recorded() - hot_before,
        10_000,
        "the always-on flight ring keeps `lifecycle` checkpoints, and \
         `lifecycle_hot` records nothing while disabled"
    );

    // Continuous telemetry: a disabled gauge site is one relaxed load —
    // no allocation, no registration. Telemetry has its own gate,
    // separate from the event-log gate, so golden determinism traces
    // stay byte-identical with gauges compiled in but off.
    let before = allocs();
    for t in 0..10_000u64 {
        rec.gauge(t, 0, "ring.fifo_backlog_ns", t % 64);
        rec.gauge_f(t, 1, "bbp.credit_balance", 32.0);
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "disabled gauge sampling must not allocate"
    );
    assert_eq!(
        rec.telemetry().series_count(),
        0,
        "disabled gauges must register nothing"
    );

    // Enabled telemetry: registration allocates once per (gauge, node);
    // steady-state sampling afterwards is allocation-free even across
    // bucket turnover and repeated pairwise downsampling — the bucket
    // ring is preallocated at SERIES_CAP and merges in place.
    rec.telemetry().enable();
    rec.gauge(0, 0, "rpc.buffers_in_use", 0);
    let before = allocs();
    for t in 1..=400_000u64 {
        rec.gauge(t * 10, 0, "rpc.buffers_in_use", t % 16);
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "steady-state gauge sampling must not allocate"
    );
    assert!(
        rec.is_empty(),
        "gauges must never write to the event log: golden traces cannot \
         see whether telemetry ran"
    );

    // Counter sanity for the telemetry path too: a fresh (gauge, node)
    // pair registers a new series, which does allocate.
    let before = allocs();
    rec.gauge(0, 7, "rpc.buffers_in_use", 1);
    let after = allocs();
    assert!(after > before, "registering a new series should allocate");
    assert_eq!(rec.telemetry().series_count(), 2);
    rec.telemetry().disable();

    // Sanity-check the counter itself: the enabled path does allocate
    // (the event vector grows), so a broken counter cannot fake a pass.
    rec.enable();
    let before = allocs();
    for t in 0..64u64 {
        rec.span_enter(t, 0, Layer::Mpi, "send");
    }
    let after = allocs();
    assert!(after > before, "enabled recording should allocate");
    assert_eq!(rec.len(), 64);
}
