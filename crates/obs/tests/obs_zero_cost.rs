//! The disabled recorder must be genuinely free: no allocations and no
//! recorded state, so leaving instrumentation compiled into every layer
//! cannot perturb a simulation that never enables it.
//!
//! Allocation counting uses a wrapping global allocator, so everything
//! runs inside ONE test function — a sibling test on another harness
//! thread would pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use obs::{Layer, Recorder, Stage};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_recorder_never_allocates() {
    let rec = Recorder::new();
    assert!(!rec.is_enabled());

    let before = ALLOCS.load(Ordering::SeqCst);
    for t in 0..10_000u64 {
        rec.span_enter(t, 0, Layer::Mpi, "send");
        rec.count(t, 1, "ring.packets", 3);
        rec.span_exit(t + 1, 0, Layer::Mpi, "send");
    }
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "disabled recording calls must not allocate"
    );
    assert!(
        rec.is_empty(),
        "disabled recording calls must record nothing"
    );

    // Message-lifecycle instrumentation: minting ids, publishing them on
    // the per-node side-channels, and recording checkpoints must all stay
    // allocation-free while disabled. `lifecycle` always feeds the
    // preallocated flight ring; `lifecycle_hot` (the per-hop variant)
    // must be a complete no-op.
    let hot_before = rec.flight().recorded();
    let before = ALLOCS.load(Ordering::SeqCst);
    for t in 0..10_000u64 {
        let id = rec.mint_trace_id(3);
        rec.set_current_trace(3, id);
        assert_eq!(rec.current_trace(3), id);
        rec.set_current_rx(5, id);
        assert_eq!(rec.current_rx(5), id);
        rec.lifecycle(t, 3, id, Stage::SendEnter, 64);
        rec.lifecycle_hot(t, 3, id, Stage::RingHop, 1);
    }
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "disabled lifecycle instrumentation must not allocate"
    );
    assert!(
        rec.is_empty(),
        "disabled lifecycle calls must append no log events"
    );
    assert_eq!(
        rec.flight().recorded() - hot_before,
        10_000,
        "the always-on flight ring keeps `lifecycle` checkpoints, and \
         `lifecycle_hot` records nothing while disabled"
    );

    // Sanity-check the counter itself: the enabled path does allocate
    // (the event vector grows), so a broken counter cannot fake a pass.
    rec.enable();
    let before = ALLOCS.load(Ordering::SeqCst);
    for t in 0..64u64 {
        rec.span_enter(t, 0, Layer::Mpi, "send");
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert!(after > before, "enabled recording should allocate");
    assert_eq!(rec.len(), 64);
}
