//! The shared recorder: a single append-only event log behind an atomic
//! enable gate.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::event::{Event, Layer, TraceEntry};
use crate::flight::FlightRecorder;
use crate::lifecycle::Stage;
use crate::timeseries::Telemetry;
use crate::Time;

/// Per-node current-trace slots (indexed `node % CURRENT_SLOTS`).
const CURRENT_SLOTS: usize = 64;

/// Records [`Event`]s from every layer of one simulation.
///
/// Exactly one entity executes at a time in the simulator, so the inner
/// mutex is never contended; it exists to make the recorder `Sync`.
///
/// **Disabled is the default and costs one relaxed atomic load per
/// recording call** — no locks, no allocations, no branches beyond the
/// gate. Span names are `&'static str` so even the enabled path never
/// allocates per event (the event vector amortizes its growth).
#[derive(Debug)]
pub struct Recorder {
    enabled: AtomicBool,
    events: Mutex<Vec<Event>>,
    /// Monotonic trace-id mint (see [`Recorder::mint_trace_id`]).
    mint: AtomicU64,
    /// The trace id currently being worked on per node: the side channel
    /// that carries a message's identity *alongside* the protocol into
    /// layers whose signatures know nothing about tracing.
    current_tx: [AtomicU64; CURRENT_SLOTS],
    /// Receive-side twin of `current_tx`: the trace id of the message a
    /// node's transport most recently delivered, so layers above the
    /// delivery (the ADI's unexpected queue) can tag their events.
    current_rx: [AtomicU64; CURRENT_SLOTS],
    /// Enabled-only `(src, seq) → trace id` correlation, so the receive
    /// side can resolve a descriptor it just matched back to the id the
    /// sender minted. Cleared on [`Recorder::enable`].
    msg_ids: Mutex<Vec<((u32, u32), u64)>>,
    /// The always-on postmortem ring (see [`crate::flight`]).
    flight: FlightRecorder,
    /// Gauge time series behind their own enable gate (see
    /// [`crate::timeseries`]): a determinism trace can run with
    /// telemetry off and stay byte-identical.
    telemetry: Telemetry,
}

impl Recorder {
    /// A disabled recorder with an empty log.
    pub fn new() -> Self {
        Recorder {
            enabled: AtomicBool::new(false),
            events: Mutex::new(Vec::new()),
            mint: AtomicU64::new(0),
            current_tx: std::array::from_fn(|_| AtomicU64::new(0)),
            current_rx: std::array::from_fn(|_| AtomicU64::new(0)),
            msg_ids: Mutex::new(Vec::new()),
            flight: FlightRecorder::new(),
            telemetry: Telemetry::new(),
        }
    }

    /// Whether recording is on. Inlined gate for every instrumentation
    /// site.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Clear the log (and the trace-id correlation map) and start
    /// recording.
    pub fn enable(&self) {
        self.lock().clear();
        self.msg_ids
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop recording (the log is kept until drained or re-enabled).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Event>> {
        self.events.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record the start of a span.
    #[inline]
    pub fn span_enter(&self, time: Time, node: u32, layer: Layer, name: &'static str) {
        if !self.is_enabled() {
            return;
        }
        self.lock().push(Event::SpanEnter {
            time,
            node,
            layer,
            name,
        });
    }

    /// Record the end of a span.
    #[inline]
    pub fn span_exit(&self, time: Time, node: u32, layer: Layer, name: &'static str) {
        if !self.is_enabled() {
            return;
        }
        self.lock().push(Event::SpanExit {
            time,
            node,
            layer,
            name,
        });
    }

    /// Record a counter increment.
    #[inline]
    pub fn count(&self, time: Time, node: u32, name: &'static str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        self.lock().push(Event::Count {
            time,
            node,
            name,
            delta,
        });
    }

    /// Record a legacy scheduler trace entry. Callers that must build a
    /// `String` detail should gate on [`Recorder::is_enabled`] first so
    /// the disabled path stays allocation-free.
    #[inline]
    pub fn sched(&self, entry: TraceEntry) {
        if !self.is_enabled() {
            return;
        }
        self.lock().push(Event::Sched(entry));
    }

    // ------------------------------------------------------------------
    // Message-lifecycle tracing
    // ------------------------------------------------------------------

    /// Mint a fresh trace id for a message entering the stack at `node`.
    ///
    /// Ids are `(node + 1) << 40 | counter`, so they are globally unique
    /// within a run, never 0, and carry their origin for free. Minting
    /// is **always on** (one relaxed `fetch_add`): the simulator's
    /// deterministic execution makes the sequence reproducible, so ids
    /// recorded by the always-on flight ring match ids in an enabled
    /// trace of the same run.
    #[inline]
    pub fn mint_trace_id(&self, node: u32) -> u64 {
        ((node as u64 + 1) << 40) | (self.mint.fetch_add(1, Ordering::Relaxed) & 0xFF_FFFF_FFFF)
    }

    /// Publish `id` as the trace currently being worked on by `node`
    /// (0 clears it). One relaxed store.
    #[inline(always)]
    pub fn set_current_trace(&self, node: u32, id: u64) {
        self.current_tx[node as usize % CURRENT_SLOTS].store(id, Ordering::Relaxed);
    }

    /// The trace id `node` is currently working on (0 = none). One
    /// relaxed load — cheap enough for the ring's injection path.
    #[inline(always)]
    pub fn current_trace(&self, node: u32) -> u64 {
        self.current_tx[node as usize % CURRENT_SLOTS].load(Ordering::Relaxed)
    }

    /// Publish `id` as the trace of the message `node`'s transport most
    /// recently delivered. One relaxed store.
    #[inline(always)]
    pub fn set_current_rx(&self, node: u32, id: u64) {
        self.current_rx[node as usize % CURRENT_SLOTS].store(id, Ordering::Relaxed);
    }

    /// The trace id of the message most recently delivered at `node`
    /// (0 = none). One relaxed load.
    #[inline(always)]
    pub fn current_rx(&self, node: u32) -> u64 {
        self.current_rx[node as usize % CURRENT_SLOTS].load(Ordering::Relaxed)
    }

    /// Record a lifecycle checkpoint. **Always** lands in the flight
    /// ring (relaxed-atomic, allocation-free); additionally appended to
    /// the event log when recording is enabled.
    #[inline]
    pub fn lifecycle(&self, time: Time, node: u32, id: u64, stage: Stage, arg: u64) {
        self.flight.push(time, node, id, stage, arg);
        if !self.is_enabled() {
            return;
        }
        self.lock().push(Event::Lifecycle {
            time,
            node,
            id,
            stage,
            arg,
        });
    }

    /// Record a lifecycle checkpoint from a hot path: a complete no-op
    /// (one relaxed load) unless recording is enabled. Used for
    /// high-frequency stages (per-hop ring transit) whose always-on
    /// cost would crowd everything else out of the flight ring.
    #[inline]
    pub fn lifecycle_hot(&self, time: Time, node: u32, id: u64, stage: Stage, arg: u64) {
        if !self.is_enabled() {
            return;
        }
        self.flight.push(time, node, id, stage, arg);
        self.lock().push(Event::Lifecycle {
            time,
            node,
            id,
            stage,
            arg,
        });
    }

    /// Remember that the message `(src, seq)` carries trace id `id`, so
    /// the receive side can recover the id from the descriptor it
    /// matched. Enabled-only (the flight ring needs no correlation —
    /// it records ids directly).
    #[inline]
    pub fn register_msg(&self, src: u32, seq: u32, id: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut map = self.msg_ids.lock().unwrap_or_else(PoisonError::into_inner);
        match map.iter_mut().find(|(k, _)| *k == (src, seq)) {
            Some(slot) => slot.1 = id,
            None => map.push(((src, seq), id)),
        }
    }

    /// The trace id registered for `(src, seq)`, or 0.
    #[inline]
    pub fn lookup_msg(&self, src: u32, seq: u32) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        self.msg_ids
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .rev()
            .find(|(k, _)| *k == (src, seq))
            .map_or(0, |(_, id)| *id)
    }

    /// The always-on postmortem flight ring.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    // ------------------------------------------------------------------
    // Gauge time series
    // ------------------------------------------------------------------

    /// The gauge registry (enable/snapshot; see [`crate::timeseries`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Whether gauge sampling is on — **independent of
    /// [`Recorder::is_enabled`]**, so determinism traces never pick up
    /// telemetry noise. One relaxed load; gate any expensive value
    /// computation on this.
    #[inline(always)]
    pub fn telemetry_on(&self) -> bool {
        self.telemetry.is_enabled()
    }

    /// Sample gauge `name` on `node`: its absolute value at sim time
    /// `time`. One relaxed load when telemetry is off; alloc-free in
    /// steady state when on.
    #[inline]
    pub fn gauge(&self, time: Time, node: u32, name: &'static str, value: u64) {
        self.telemetry.observe(time, node, name, value as f64);
    }

    /// [`Recorder::gauge`] for fractional values (utilizations, ratios).
    #[inline]
    pub fn gauge_f(&self, time: Time, node: u32, name: &'static str, value: f64) {
        self.telemetry.observe(time, node, name, value);
    }

    /// Number of events currently in the log.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Drain the full structured log (recording state is unchanged).
    pub fn take_events(&self) -> Vec<Event> {
        std::mem::take(&mut *self.lock())
    }

    /// Snapshot the log without draining it.
    pub fn snapshot(&self) -> Vec<Event> {
        self.lock().clone()
    }

    /// Drain only the legacy scheduler entries and stop recording —
    /// the exact contract of the old `des::Simulation::take_trace`.
    pub fn take_trace(&self) -> Vec<TraceEntry> {
        self.disable();
        self.take_events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Sched(entry) => Some(entry),
                _ => None,
            })
            .collect()
    }

    /// Aggregate counter totals, sorted by name then node for stable
    /// output.
    pub fn counter_totals(&self) -> Vec<(&'static str, u32, u64)> {
        let mut totals: Vec<(&'static str, u32, u64)> = Vec::new();
        for e in self.lock().iter() {
            if let Event::Count {
                name, node, delta, ..
            } = e
            {
                match totals.iter_mut().find(|(n, nd, _)| n == name && nd == node) {
                    Some(slot) => slot.2 += delta,
                    None => totals.push((name, *node, *delta)),
                }
            }
        }
        totals.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        totals
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceKind;

    #[test]
    fn disabled_recorder_drops_everything() {
        let r = Recorder::new();
        r.span_enter(1, 0, Layer::Bbp, "send");
        r.count(2, 0, "x", 5);
        r.sched(TraceEntry {
            time: 3,
            kind: TraceKind::Mark,
            detail: "m".into(),
        });
        assert!(r.is_empty());
    }

    #[test]
    fn enable_clears_previous_log() {
        let r = Recorder::new();
        r.enable();
        r.count(1, 0, "x", 1);
        assert_eq!(r.len(), 1);
        r.enable();
        assert!(r.is_empty());
    }

    #[test]
    fn take_trace_filters_and_disables() {
        let r = Recorder::new();
        r.enable();
        r.span_enter(1, 0, Layer::Mpi, "send");
        r.sched(TraceEntry {
            time: 2,
            kind: TraceKind::Resume,
            detail: "p".into(),
        });
        r.span_exit(3, 0, Layer::Mpi, "send");
        let trace = r.take_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].kind, TraceKind::Resume);
        assert!(!r.is_enabled());
        assert!(r.is_empty());
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let r = Recorder::new();
        let a = r.mint_trace_id(0);
        let b = r.mint_trace_id(0);
        let c = r.mint_trace_id(3);
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_ne!(b, c);
        // The origin node is recoverable from the high bits.
        assert_eq!(c >> 40, 4);
    }

    #[test]
    fn current_trace_round_trips_per_node() {
        let r = Recorder::new();
        r.set_current_trace(0, 11);
        r.set_current_trace(2, 22);
        assert_eq!(r.current_trace(0), 11);
        assert_eq!(r.current_trace(2), 22);
        assert_eq!(r.current_trace(1), 0);
        r.set_current_trace(0, 0);
        assert_eq!(r.current_trace(0), 0);
    }

    #[test]
    fn lifecycle_feeds_flight_ring_even_when_disabled() {
        let r = Recorder::new();
        r.lifecycle(5, 0, 9, Stage::SendEnter, 0);
        assert!(r.is_empty(), "disabled log must stay empty");
        assert_eq!(r.flight().recorded(), 1);
        r.enable();
        r.lifecycle(6, 0, 9, Stage::Deliver, 0);
        assert_eq!(r.len(), 1);
        assert_eq!(r.flight().recorded(), 2);
    }

    #[test]
    fn lifecycle_hot_is_a_noop_when_disabled() {
        let r = Recorder::new();
        r.lifecycle_hot(5, 0, 9, Stage::RingHop, 1);
        assert!(r.is_empty());
        assert_eq!(r.flight().recorded(), 0);
        r.enable();
        r.lifecycle_hot(6, 0, 9, Stage::RingHop, 2);
        assert_eq!(r.len(), 1);
        assert_eq!(r.flight().recorded(), 1);
    }

    #[test]
    fn msg_correlation_is_enabled_only_and_cleared_on_enable() {
        let r = Recorder::new();
        r.register_msg(0, 7, 99);
        assert_eq!(r.lookup_msg(0, 7), 0, "disabled: nothing registered");
        r.enable();
        r.register_msg(0, 7, 99);
        assert_eq!(r.lookup_msg(0, 7), 99);
        assert_eq!(r.lookup_msg(1, 7), 0);
        r.enable();
        assert_eq!(r.lookup_msg(0, 7), 0, "enable() clears the map");
    }

    #[test]
    fn telemetry_gate_is_independent_of_the_event_log_gate() {
        let r = Recorder::new();
        r.enable();
        r.gauge(1_000, 0, "q.depth", 3);
        assert_eq!(
            r.telemetry().series_count(),
            0,
            "event-log enable must not turn gauges on"
        );
        assert!(r.is_empty(), "gauges never touch the event log");
        r.telemetry().enable();
        r.disable();
        r.gauge(2_000, 0, "q.depth", 5);
        r.gauge_f(3_000, 0, "link.util", 0.75);
        assert_eq!(r.telemetry().series_count(), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn counter_totals_aggregate_per_node() {
        let r = Recorder::new();
        r.enable();
        r.count(1, 0, "ring.packets", 2);
        r.count(2, 1, "ring.packets", 3);
        r.count(3, 0, "ring.packets", 5);
        r.count(4, 0, "nic.pio_words", 1);
        assert_eq!(
            r.counter_totals(),
            vec![
                ("nic.pio_words", 0, 1),
                ("ring.packets", 0, 7),
                ("ring.packets", 1, 3),
            ]
        );
    }
}
