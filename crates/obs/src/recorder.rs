//! The shared recorder: a single append-only event log behind an atomic
//! enable gate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::event::{Event, Layer, TraceEntry};
use crate::Time;

/// Records [`Event`]s from every layer of one simulation.
///
/// Exactly one entity executes at a time in the simulator, so the inner
/// mutex is never contended; it exists to make the recorder `Sync`.
///
/// **Disabled is the default and costs one relaxed atomic load per
/// recording call** — no locks, no allocations, no branches beyond the
/// gate. Span names are `&'static str` so even the enabled path never
/// allocates per event (the event vector amortizes its growth).
#[derive(Debug, Default)]
pub struct Recorder {
    enabled: AtomicBool,
    events: Mutex<Vec<Event>>,
}

impl Recorder {
    /// A disabled recorder with an empty log.
    pub fn new() -> Self {
        Recorder {
            enabled: AtomicBool::new(false),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Whether recording is on. Inlined gate for every instrumentation
    /// site.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Clear the log and start recording.
    pub fn enable(&self) {
        self.lock().clear();
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop recording (the log is kept until drained or re-enabled).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Event>> {
        self.events.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record the start of a span.
    #[inline]
    pub fn span_enter(&self, time: Time, node: u32, layer: Layer, name: &'static str) {
        if !self.is_enabled() {
            return;
        }
        self.lock().push(Event::SpanEnter {
            time,
            node,
            layer,
            name,
        });
    }

    /// Record the end of a span.
    #[inline]
    pub fn span_exit(&self, time: Time, node: u32, layer: Layer, name: &'static str) {
        if !self.is_enabled() {
            return;
        }
        self.lock().push(Event::SpanExit {
            time,
            node,
            layer,
            name,
        });
    }

    /// Record a counter increment.
    #[inline]
    pub fn count(&self, time: Time, node: u32, name: &'static str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        self.lock().push(Event::Count {
            time,
            node,
            name,
            delta,
        });
    }

    /// Record a legacy scheduler trace entry. Callers that must build a
    /// `String` detail should gate on [`Recorder::is_enabled`] first so
    /// the disabled path stays allocation-free.
    #[inline]
    pub fn sched(&self, entry: TraceEntry) {
        if !self.is_enabled() {
            return;
        }
        self.lock().push(Event::Sched(entry));
    }

    /// Number of events currently in the log.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Drain the full structured log (recording state is unchanged).
    pub fn take_events(&self) -> Vec<Event> {
        std::mem::take(&mut *self.lock())
    }

    /// Snapshot the log without draining it.
    pub fn snapshot(&self) -> Vec<Event> {
        self.lock().clone()
    }

    /// Drain only the legacy scheduler entries and stop recording —
    /// the exact contract of the old `des::Simulation::take_trace`.
    pub fn take_trace(&self) -> Vec<TraceEntry> {
        self.disable();
        self.take_events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Sched(entry) => Some(entry),
                _ => None,
            })
            .collect()
    }

    /// Aggregate counter totals, sorted by name then node for stable
    /// output.
    pub fn counter_totals(&self) -> Vec<(&'static str, u32, u64)> {
        let mut totals: Vec<(&'static str, u32, u64)> = Vec::new();
        for e in self.lock().iter() {
            if let Event::Count {
                name, node, delta, ..
            } = e
            {
                match totals.iter_mut().find(|(n, nd, _)| n == name && nd == node) {
                    Some(slot) => slot.2 += delta,
                    None => totals.push((name, *node, *delta)),
                }
            }
        }
        totals.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceKind;

    #[test]
    fn disabled_recorder_drops_everything() {
        let r = Recorder::new();
        r.span_enter(1, 0, Layer::Bbp, "send");
        r.count(2, 0, "x", 5);
        r.sched(TraceEntry {
            time: 3,
            kind: TraceKind::Mark,
            detail: "m".into(),
        });
        assert!(r.is_empty());
    }

    #[test]
    fn enable_clears_previous_log() {
        let r = Recorder::new();
        r.enable();
        r.count(1, 0, "x", 1);
        assert_eq!(r.len(), 1);
        r.enable();
        assert!(r.is_empty());
    }

    #[test]
    fn take_trace_filters_and_disables() {
        let r = Recorder::new();
        r.enable();
        r.span_enter(1, 0, Layer::Mpi, "send");
        r.sched(TraceEntry {
            time: 2,
            kind: TraceKind::Resume,
            detail: "p".into(),
        });
        r.span_exit(3, 0, Layer::Mpi, "send");
        let trace = r.take_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].kind, TraceKind::Resume);
        assert!(!r.is_enabled());
        assert!(r.is_empty());
    }

    #[test]
    fn counter_totals_aggregate_per_node() {
        let r = Recorder::new();
        r.enable();
        r.count(1, 0, "ring.packets", 2);
        r.count(2, 1, "ring.packets", 3);
        r.count(3, 0, "ring.packets", 5);
        r.count(4, 0, "nic.pio_words", 1);
        assert_eq!(
            r.counter_totals(),
            vec![
                ("nic.pio_words", 0, 1),
                ("ring.packets", 0, 7),
                ("ring.packets", 1, 3),
            ]
        );
    }
}
