//! Allocation-free log-bucket latency histograms.
//!
//! [`LogHistogram`] is a fixed array of 64 power-of-two buckets behind
//! relaxed atomic increments: recording a sample is one relaxed
//! `fetch_add` into a preallocated slot — no locks, no allocation, no
//! branches beyond the bucket computation — so the histograms can stay
//! armed on hot protocol paths (heartbeat detection, retry repair)
//! without perturbing the disabled-observability cost model.
//!
//! The price of the fixed layout is resolution: a sample is remembered
//! only as "some value in `[2^(k-1), 2^k)`", and quantiles answer with
//! the midpoint of the bucket the requested rank lands in. For latency
//! distributions spanning nanoseconds to seconds that is a ≤ 50% band —
//! exactly the log-scale fidelity tail reporting needs, at a fixed
//! 512-byte footprint.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible bit-length of a `u64` sample
/// (bucket 0 holds exact zeros).
pub const BUCKETS: usize = 64;

/// A fixed-size log₂-bucketed histogram of `u64` samples (nanoseconds,
/// by convention) with relaxed-atomic recording.
///
/// Bucket `k ≥ 1` holds samples in `[2^(k-1), 2^k)`; bucket 0 holds
/// exact zeros; samples at or above `2^62` saturate into the last
/// bucket. Quantile queries return the midpoint of the selected bucket,
/// which makes them deterministic functions of the recorded counts.
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
}

/// Bucket index for a sample: its bit length, saturated to the table.
#[inline(always)]
fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Deterministic representative value for a bucket (its midpoint).
fn bucket_mid(b: usize) -> u64 {
    match b {
        0 => 0,
        1 => 1,
        _ => 3u64 << (b - 2),
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample. One relaxed `fetch_add`; never locks or
    /// allocates.
    #[inline(always)]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The current per-bucket counts.
    pub fn snapshot(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Reset every bucket to zero.
    pub fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Fold another histogram's counts into this one, bucket-wise.
    /// Aggregating campaign-wide distributions from per-cell or
    /// per-node histograms loses nothing: the buckets align exactly.
    pub fn merge(&self, other: &LogHistogram) {
        for (b, &c) in other.snapshot().iter().enumerate() {
            if c > 0 {
                self.buckets[b].fetch_add(c, Ordering::Relaxed);
            }
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the midpoint of the bucket
    /// holding the rank-`⌈q·n⌉` sample. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts = self.snapshot();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (b, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_mid(b);
            }
        }
        bucket_mid(BUCKETS - 1)
    }

    /// Median (bucket midpoint).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile (bucket midpoint).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (bucket midpoint).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Midpoint of the lowest non-empty bucket (0 when empty).
    pub fn min(&self) -> u64 {
        let counts = self.snapshot();
        counts.iter().position(|&c| c > 0).map_or(0, bucket_mid)
    }

    /// Midpoint of the highest non-empty bucket (0 when empty).
    pub fn max(&self) -> u64 {
        let counts = self.snapshot();
        counts.iter().rposition(|&c| c > 0).map_or(0, bucket_mid)
    }

    /// Mean over bucket midpoints (0 when empty).
    pub fn mean(&self) -> f64 {
        let counts = self.snapshot();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return 0.0;
        }
        let sum: f64 = counts
            .iter()
            .enumerate()
            .map(|(b, &c)| bucket_mid(b) as f64 * c as f64)
            .sum();
        sum / n as f64
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn midpoints_sit_inside_their_bucket() {
        for b in 2..BUCKETS - 1 {
            let lo = 1u64 << (b - 1);
            let hi = 1u64 << b;
            let mid = bucket_mid(b);
            assert!(lo <= mid && mid < hi, "bucket {b}: {lo} <= {mid} < {hi}");
            assert_eq!(bucket_of(mid), b);
        }
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let h = LogHistogram::new();
        // 90 fast samples around 1 µs, 10 slow around 1 ms.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), bucket_mid(bucket_of(1_000)));
        assert_eq!(h.p99(), bucket_mid(bucket_of(1_000_000)));
        assert_eq!(h.p999(), bucket_mid(bucket_of(1_000_000)));
        assert_eq!(h.min(), bucket_mid(bucket_of(1_000)));
        assert_eq!(h.max(), bucket_mid(bucket_of(1_000_000)));
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantile_is_within_a_factor_of_two() {
        let h = LogHistogram::new();
        for v in [620_000u64, 640_000, 700_000, 590_000] {
            h.record(v);
        }
        let p50 = h.p50();
        assert!((590_000 / 2..=700_000 * 2).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn clear_resets_counts() {
        let h = LogHistogram::new();
        h.record(7);
        h.clear();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        a.record(1_000);
        b.record(1_000);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), bucket_mid(bucket_of(1_000_000)));
        assert_eq!(a.min(), bucket_mid(bucket_of(1_000)));
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let h = LogHistogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
    }
}
