//! The machine-readable bench report: a versioned JSON schema
//! (`BENCH_summary.json`) that CI validates and archives. The writer and
//! validator live together so the schema cannot drift from its checker.

use crate::json::{self, write_f64, write_string, Json};

/// Version stamped into every report; bump on breaking schema changes.
///
/// v2 added the `wallclock` section: host-side self-measurement of the
/// simulator's own throughput (events/sec, simulated-ns/sec, peak queue
/// depth), recorded so every PR's engine speed is pinned against the
/// committed baseline.
///
/// v3 added tail percentiles (`p999_us` in every quantile row) and the
/// `messages` section: per-message lifecycle waterfalls reconstructed
/// from trace-id flow events. The validator still accepts v2 documents
/// ([`validate_json`] dispatches on the version), so committed v2
/// baselines keep validating.
///
/// v4 added the parallel-engine fields to every `wallclock` entry:
/// `threads` (worker count, 1 for the sequential engine) and `shards`
/// (per-shard execution counters — events, busy/stall passes, mailbox
/// and queue peaks — empty for sequential runs). v2/v3 documents keep
/// validating under their own rules.
///
/// v5 added the `capacity` section: per-scenario SLO capacity results
/// from the workload campaigns — the max sustainable load multiplier
/// and throughput at a p999 latency target, with the full
/// load-multiplier ladder per seed (`offered_hz`, `completed_hz`,
/// `p999_us`, `sheds_per_sec`, `violations`, and what limited the
/// cell). v2–v4 documents keep validating under their own rules.
///
/// v6 added the `timeseries` section — one row per continuously
/// sampled gauge (per-metric `min`/`mean`/`max`/`last` plus the sim
/// time the peak was first reached) — and the `quorum` section
/// surfacing the partition-tolerance counters per node
/// (`stale_epoch_rejects`, `freezes`, `epoch_bumps`). v2–v5 documents
/// keep validating under their own rules.
pub const SCHEMA_VERSION: u32 = 6;

/// Oldest schema version [`validate_json`] still accepts.
pub const MIN_SCHEMA_VERSION: u32 = 2;

/// The paper's MPI-over-BBP layering constant: MPI adds ≈37.5 µs of
/// software overhead on top of raw BBP latency, independent of message
/// size (Moorthy et al., IPPS 1999, Table 2).
pub const PAPER_LAYERING_US: f64 = 37.5;

/// One latency anchor: a measured number pinned against the paper.
#[derive(Debug, Clone)]
pub struct Anchor {
    /// Anchor id, e.g. `"bbp_0B_one_way"`.
    pub name: String,
    /// The paper's value, µs.
    pub paper_us: f64,
    /// Our measured value, µs.
    pub measured_us: f64,
}

impl Anchor {
    /// Signed deviation from the paper, percent.
    pub fn deviation_pct(&self) -> f64 {
        if self.paper_us == 0.0 {
            0.0
        } else {
            (self.measured_us - self.paper_us) / self.paper_us * 100.0
        }
    }
}

/// One labelled series in a [`Table`].
#[derive(Debug, Clone)]
pub struct Series {
    /// Series label, e.g. `"bbp"`.
    pub label: String,
    /// One value per table size, in the table's unit.
    pub values: Vec<f64>,
}

/// A size-sweep table (latency or bandwidth vs message size).
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Unit of the values, e.g. `"us"` or `"MB/s"`.
    pub unit: String,
    /// Message sizes, bytes.
    pub sizes: Vec<usize>,
    /// Measured series.
    pub series: Vec<Series>,
}

/// A crossover point between two series.
#[derive(Debug, Clone)]
pub struct Crossover {
    /// Series that wins below the crossover.
    pub incumbent: String,
    /// Series that wins above it.
    pub challenger: String,
    /// First size (bytes) at which the challenger wins, if any.
    pub at_bytes: Option<usize>,
}

/// Per-layer self-time attribution row.
#[derive(Debug, Clone)]
pub struct LayerRow {
    /// Layer name (see `Layer::name`).
    pub layer: String,
    /// Self time, µs.
    pub self_us: f64,
    /// Share of covered time, percent.
    pub share_pct: f64,
}

/// The MPI-over-BBP layering constant check.
#[derive(Debug, Clone)]
pub struct Layering {
    /// The paper's constant ([`PAPER_LAYERING_US`]).
    pub paper_us: f64,
    /// Measured `mpi_one_way − bbp_one_way` at 0 bytes, µs.
    pub measured_us: f64,
}

impl Layering {
    /// Absolute deviation from the paper, percent.
    pub fn within_pct(&self) -> f64 {
        ((self.measured_us - self.paper_us) / self.paper_us * 100.0).abs()
    }
}

/// Quantile summary of one latency distribution.
#[derive(Debug, Clone)]
pub struct Quantiles {
    /// Distribution name, e.g. `"mpi_pingpong_0B"`.
    pub name: String,
    /// Sample count.
    pub n: u64,
    /// Minimum, µs.
    pub min_us: f64,
    /// Median, µs.
    pub p50_us: f64,
    /// 90th percentile, µs.
    pub p90_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// 99.9th percentile, µs.
    pub p999_us: f64,
    /// Maximum, µs.
    pub max_us: f64,
    /// Mean, µs.
    pub mean_us: f64,
}

/// One checkpoint of a [`MessageRow`] waterfall.
#[derive(Debug, Clone)]
pub struct MessageStage {
    /// Stage name (see `lifecycle::Stage::name`).
    pub stage: String,
    /// Time of the checkpoint relative to the message's first, µs.
    pub at_us: f64,
    /// Node the checkpoint happened on.
    pub node: u32,
}

/// One message's reconstructed lifecycle waterfall.
#[derive(Debug, Clone)]
pub struct MessageRow {
    /// The trace id.
    pub id: u64,
    /// Origin node.
    pub src: u32,
    /// First-to-last checkpoint span, µs.
    pub total_us: f64,
    /// Checkpoints in time order.
    pub stages: Vec<MessageStage>,
}

/// Per-shard execution counters of one parallel wallclock run
/// (schema v4): the utilization / lookahead-stall breakdown.
#[derive(Debug, Clone)]
pub struct WallclockShard {
    /// Shard id.
    pub shard: u32,
    /// Events executed on this shard.
    pub events: u64,
    /// Scheduling passes that executed at least one event.
    pub busy_passes: u64,
    /// Passes where pending events all sat above the conservative safe
    /// bound (lookahead stalls).
    pub stall_passes: u64,
    /// Deepest in-link mailbox observed.
    pub max_mailbox_depth: u64,
    /// Posts that overflowed a bounded mailbox into the sender spill.
    pub spilled: u64,
    /// Largest local pending-queue depth observed.
    pub peak_queue_depth: u64,
}

impl WallclockShard {
    /// Fraction of scheduling passes that made progress (0 when the
    /// shard never passed) — the utilization figure the bench report
    /// prints.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_passes + self.stall_passes;
        if total == 0 {
            0.0
        } else {
            self.busy_passes as f64 / total as f64
        }
    }
}

/// One wall-clock self-measurement: how fast the simulator itself ran
/// one scenario on the host, independent of virtual-time results.
#[derive(Debug, Clone)]
pub struct Wallclock {
    /// Scenario id, e.g. `"ring_bcast_stress_16node"`. Baseline echoes
    /// carry an `@baseline` suffix.
    pub scenario: String,
    /// Scheduler dispatches executed (events + process resumptions).
    pub events: u64,
    /// Virtual time covered by the run, nanoseconds.
    pub sim_ns: u64,
    /// Host wall-clock time for the run, milliseconds.
    pub wall_ms: f64,
    /// Dispatch throughput: `events / wall seconds`.
    pub events_per_sec: f64,
    /// Virtual-time throughput: simulated nanoseconds per wall second.
    pub sim_ns_per_sec: f64,
    /// Largest pending-queue depth observed during the run (summed over
    /// shards for parallel runs).
    pub peak_queue_depth: u64,
    /// Worker threads the engine ran on (1 = sequential engine).
    pub threads: u64,
    /// Per-shard breakdown (empty for sequential-engine runs).
    pub shards: Vec<WallclockShard>,
}

/// One rung of a capacity scenario's load-multiplier ladder
/// (schema v5).
#[derive(Debug, Clone)]
pub struct CapacityCell {
    /// Seed the cell ran under.
    pub seed: u64,
    /// Load multiplier applied to the scenario's base rate.
    pub mult: f64,
    /// Offered arrivals per second of virtual time.
    pub offered_hz: f64,
    /// Completed requests per second of virtual time.
    pub completed_hz: f64,
    /// p999 service latency, µs.
    pub p999_us: f64,
    /// Arrivals shed per second (channel + transport credit gates) —
    /// distinguishes shed-limited from latency-limited saturation.
    pub sheds_per_sec: f64,
    /// Invariant violations in the cell (0 for a healthy cell).
    pub violations: u64,
    /// What stopped this rung from sustaining: `"none"`, `"latency"`,
    /// `"shed"`, or `"violation"`.
    pub limited_by: String,
}

/// Summary row of one continuously sampled gauge series (schema v6).
#[derive(Debug, Clone)]
pub struct TimeseriesRow {
    /// Gauge name (dot-scoped by layer, e.g. `rpc.buffers_in_use`).
    pub name: String,
    /// Owning node (or shard id for `par.*` gauges).
    pub node: u32,
    /// Observations folded into the series.
    pub n: u64,
    /// Exact series minimum.
    pub min: f64,
    /// Exact series mean.
    pub mean: f64,
    /// Exact series maximum.
    pub max: f64,
    /// Final observed value.
    pub last: f64,
    /// Sim time the maximum was first reached, µs.
    pub peak_at_us: f64,
}

impl TimeseriesRow {
    /// Summarize a telemetry snapshot into its report row.
    pub fn from_snapshot(s: &crate::timeseries::SeriesSnapshot) -> Self {
        TimeseriesRow {
            name: s.name.to_string(),
            node: s.node,
            n: s.observations,
            min: s.min,
            mean: s.mean,
            max: s.max,
            last: s.last,
            peak_at_us: s.peak_at as f64 / 1_000.0,
        }
    }
}

/// Per-node partition-tolerance counters (schema v6): how the quorum
/// machinery behaved during the report's partition scenario.
#[derive(Debug, Clone)]
pub struct QuorumRow {
    /// Node rank.
    pub node: u32,
    /// Sends/acks rejected for carrying a stale epoch.
    pub stale_epoch_rejects: u64,
    /// Times the node froze on losing quorum (partitions detected).
    pub freezes: u64,
    /// Epoch bumps observed (view changes joined).
    pub epoch_bumps: u64,
}

/// One scenario's capacity result at one message size (schema v5).
#[derive(Debug, Clone)]
pub struct CapacityScenario {
    /// Scenario id, e.g. `"incast"`.
    pub scenario: String,
    /// Request body size, bytes.
    pub size: usize,
    /// The p999 SLO target the sweep was run against, µs.
    pub p999_target_us: f64,
    /// Highest offered load (requests/s) every seed sustained within
    /// the SLO; 0 when no rung sustained.
    pub max_sustainable_hz: f64,
    /// The load multiplier of that rung; 0 when no rung sustained.
    pub max_sustainable_mult: f64,
    /// The full ladder, every (seed, mult) rung.
    pub cells: Vec<CapacityCell>,
}

/// The complete report (`BENCH_summary.json`).
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// Tool that produced the report, e.g. `"bench-report --quick"`.
    pub generated_by: String,
    /// Paper-pinned anchors.
    pub anchors: Vec<Anchor>,
    /// Size-sweep tables.
    pub tables: Vec<Table>,
    /// Crossover points.
    pub crossovers: Vec<Crossover>,
    /// Per-layer attribution.
    pub layers: Vec<LayerRow>,
    /// The layering-constant check (absent until measured).
    pub layering: Option<Layering>,
    /// Latency distributions.
    pub quantiles: Vec<Quantiles>,
    /// Per-message lifecycle waterfalls (empty unless the run traced
    /// messages).
    pub messages: Vec<MessageRow>,
    /// Wall-clock engine self-measurements (the bench trajectory).
    pub wallclock: Vec<Wallclock>,
    /// Workload-campaign capacity results (schema v5).
    pub capacity: Vec<CapacityScenario>,
    /// Continuous-gauge summaries (schema v6).
    pub timeseries: Vec<TimeseriesRow>,
    /// Per-node partition-tolerance counters (schema v6).
    pub quorum: Vec<QuorumRow>,
}

impl BenchReport {
    /// Serialize to the versioned JSON document.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(4096);
        o.push_str("{\n  \"schema_version\": ");
        let _ = std::fmt::Write::write_fmt(&mut o, format_args!("{SCHEMA_VERSION}"));
        o.push_str(",\n  \"generated_by\": ");
        write_string(&mut o, &self.generated_by);

        o.push_str(",\n  \"anchors\": [");
        for (i, a) in self.anchors.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    {\"name\": ");
            write_string(&mut o, &a.name);
            o.push_str(", \"paper_us\": ");
            write_f64(&mut o, a.paper_us);
            o.push_str(", \"measured_us\": ");
            write_f64(&mut o, a.measured_us);
            o.push_str(", \"deviation_pct\": ");
            write_f64(&mut o, a.deviation_pct());
            o.push('}');
        }
        o.push_str("\n  ],\n  \"tables\": [");
        for (i, t) in self.tables.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    {\"title\": ");
            write_string(&mut o, &t.title);
            o.push_str(", \"unit\": ");
            write_string(&mut o, &t.unit);
            o.push_str(", \"sizes\": [");
            for (j, s) in t.sizes.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                let _ = std::fmt::Write::write_fmt(&mut o, format_args!("{s}"));
            }
            o.push_str("], \"series\": [");
            for (j, s) in t.series.iter().enumerate() {
                if j > 0 {
                    o.push_str(", ");
                }
                o.push_str("{\"label\": ");
                write_string(&mut o, &s.label);
                o.push_str(", \"values\": [");
                for (k, v) in s.values.iter().enumerate() {
                    if k > 0 {
                        o.push(',');
                    }
                    write_f64(&mut o, *v);
                }
                o.push_str("]}");
            }
            o.push_str("]}");
        }
        o.push_str("\n  ],\n  \"crossovers\": [");
        for (i, c) in self.crossovers.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    {\"incumbent\": ");
            write_string(&mut o, &c.incumbent);
            o.push_str(", \"challenger\": ");
            write_string(&mut o, &c.challenger);
            o.push_str(", \"at_bytes\": ");
            match c.at_bytes {
                Some(b) => {
                    let _ = std::fmt::Write::write_fmt(&mut o, format_args!("{b}"));
                }
                None => o.push_str("null"),
            }
            o.push('}');
        }
        o.push_str("\n  ],\n  \"layers\": [");
        for (i, l) in self.layers.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    {\"layer\": ");
            write_string(&mut o, &l.layer);
            o.push_str(", \"self_us\": ");
            write_f64(&mut o, l.self_us);
            o.push_str(", \"share_pct\": ");
            write_f64(&mut o, l.share_pct);
            o.push('}');
        }
        o.push_str("\n  ],\n  \"layering\": ");
        match &self.layering {
            Some(l) => {
                o.push_str("{\"paper_us\": ");
                write_f64(&mut o, l.paper_us);
                o.push_str(", \"measured_us\": ");
                write_f64(&mut o, l.measured_us);
                o.push_str(", \"within_pct\": ");
                write_f64(&mut o, l.within_pct());
                o.push('}');
            }
            None => o.push_str("null"),
        }
        o.push_str(",\n  \"quantiles\": [");
        for (i, q) in self.quantiles.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    {\"name\": ");
            write_string(&mut o, &q.name);
            o.push_str(", \"n\": ");
            let _ = std::fmt::Write::write_fmt(&mut o, format_args!("{}", q.n));
            for (key, v) in [
                ("min_us", q.min_us),
                ("p50_us", q.p50_us),
                ("p90_us", q.p90_us),
                ("p99_us", q.p99_us),
                ("p999_us", q.p999_us),
                ("max_us", q.max_us),
                ("mean_us", q.mean_us),
            ] {
                o.push_str(", \"");
                o.push_str(key);
                o.push_str("\": ");
                write_f64(&mut o, v);
            }
            o.push('}');
        }
        o.push_str("\n  ],\n  \"messages\": [");
        for (i, m) in self.messages.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = std::fmt::Write::write_fmt(
                &mut o,
                format_args!("    {{\"id\": {}, \"src\": {}, \"total_us\": ", m.id, m.src),
            );
            write_f64(&mut o, m.total_us);
            o.push_str(", \"stages\": [");
            for (j, s) in m.stages.iter().enumerate() {
                if j > 0 {
                    o.push_str(", ");
                }
                o.push_str("{\"stage\": ");
                write_string(&mut o, &s.stage);
                o.push_str(", \"at_us\": ");
                write_f64(&mut o, s.at_us);
                let _ =
                    std::fmt::Write::write_fmt(&mut o, format_args!(", \"node\": {}}}", s.node));
            }
            o.push_str("]}");
        }
        o.push_str("\n  ],\n  \"capacity\": [");
        for (i, c) in self.capacity.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    {\"scenario\": ");
            write_string(&mut o, &c.scenario);
            let _ = std::fmt::Write::write_fmt(&mut o, format_args!(", \"size\": {}", c.size));
            o.push_str(", \"p999_target_us\": ");
            write_f64(&mut o, c.p999_target_us);
            o.push_str(", \"max_sustainable_hz\": ");
            write_f64(&mut o, c.max_sustainable_hz);
            o.push_str(", \"max_sustainable_mult\": ");
            write_f64(&mut o, c.max_sustainable_mult);
            o.push_str(", \"cells\": [");
            for (j, cell) in c.cells.iter().enumerate() {
                if j > 0 {
                    o.push_str(", ");
                }
                let _ = std::fmt::Write::write_fmt(
                    &mut o,
                    format_args!("{{\"seed\": {}, \"mult\": ", cell.seed),
                );
                write_f64(&mut o, cell.mult);
                for (key, v) in [
                    ("offered_hz", cell.offered_hz),
                    ("completed_hz", cell.completed_hz),
                    ("p999_us", cell.p999_us),
                    ("sheds_per_sec", cell.sheds_per_sec),
                ] {
                    o.push_str(", \"");
                    o.push_str(key);
                    o.push_str("\": ");
                    write_f64(&mut o, v);
                }
                let _ = std::fmt::Write::write_fmt(
                    &mut o,
                    format_args!(", \"violations\": {}, \"limited_by\": ", cell.violations),
                );
                write_string(&mut o, &cell.limited_by);
                o.push('}');
            }
            o.push_str("]}");
        }
        o.push_str("\n  ],\n  \"timeseries\": [");
        for (i, t) in self.timeseries.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    {\"name\": ");
            write_string(&mut o, &t.name);
            let _ = std::fmt::Write::write_fmt(
                &mut o,
                format_args!(", \"node\": {}, \"n\": {}", t.node, t.n),
            );
            for (key, v) in [
                ("min", t.min),
                ("mean", t.mean),
                ("max", t.max),
                ("last", t.last),
                ("peak_at_us", t.peak_at_us),
            ] {
                o.push_str(", \"");
                o.push_str(key);
                o.push_str("\": ");
                write_f64(&mut o, v);
            }
            o.push('}');
        }
        o.push_str("\n  ],\n  \"quorum\": [");
        for (i, q) in self.quorum.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = std::fmt::Write::write_fmt(
                &mut o,
                format_args!(
                    "    {{\"node\": {}, \"stale_epoch_rejects\": {}, \
                     \"freezes\": {}, \"epoch_bumps\": {}}}",
                    q.node, q.stale_epoch_rejects, q.freezes, q.epoch_bumps
                ),
            );
        }
        o.push_str("\n  ],\n  \"wallclock\": [");
        for (i, w) in self.wallclock.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    {\"scenario\": ");
            write_string(&mut o, &w.scenario);
            o.push_str(", \"events\": ");
            let _ = std::fmt::Write::write_fmt(&mut o, format_args!("{}", w.events));
            o.push_str(", \"sim_ns\": ");
            let _ = std::fmt::Write::write_fmt(&mut o, format_args!("{}", w.sim_ns));
            o.push_str(", \"wall_ms\": ");
            write_f64(&mut o, w.wall_ms);
            o.push_str(", \"events_per_sec\": ");
            write_f64(&mut o, w.events_per_sec);
            o.push_str(", \"sim_ns_per_sec\": ");
            write_f64(&mut o, w.sim_ns_per_sec);
            o.push_str(", \"peak_queue_depth\": ");
            let _ = std::fmt::Write::write_fmt(&mut o, format_args!("{}", w.peak_queue_depth));
            o.push_str(", \"threads\": ");
            let _ = std::fmt::Write::write_fmt(&mut o, format_args!("{}", w.threads));
            o.push_str(", \"shards\": [");
            for (j, s) in w.shards.iter().enumerate() {
                if j > 0 {
                    o.push_str(", ");
                }
                let _ = std::fmt::Write::write_fmt(
                    &mut o,
                    format_args!(
                        "{{\"shard\": {}, \"events\": {}, \"busy_passes\": {}, \
                         \"stall_passes\": {}, \"max_mailbox_depth\": {}, \
                         \"spilled\": {}, \"peak_queue_depth\": {}, \"utilization\": ",
                        s.shard,
                        s.events,
                        s.busy_passes,
                        s.stall_passes,
                        s.max_mailbox_depth,
                        s.spilled,
                        s.peak_queue_depth
                    ),
                );
                write_f64(&mut o, s.utilization());
                o.push('}');
            }
            o.push_str("]}");
        }
        o.push_str("\n  ]\n}\n");
        o
    }
}

fn require<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing key '{key}'"))
}

fn require_arr<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], String> {
    require(doc, key)?
        .as_arr()
        .ok_or_else(|| format!("'{key}' must be an array"))
}

fn require_num(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    require(obj, key)
        .map_err(|e| format!("{ctx}: {e}"))?
        .as_f64()
        .ok_or_else(|| format!("{ctx}: '{key}' must be a number"))
}

fn require_str<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a str, String> {
    require(obj, key)
        .map_err(|e| format!("{ctx}: {e}"))?
        .as_str()
        .ok_or_else(|| format!("{ctx}: '{key}' must be a string"))
}

/// Validate a `BENCH_summary.json` document. Version-dispatching: the
/// checks applied are those of the document's own `schema_version`, so
/// committed v2 baselines keep validating after a schema bump; versions
/// outside [`MIN_SCHEMA_VERSION`]`..=`[`SCHEMA_VERSION`] are rejected.
/// Returns the first problem found.
pub fn validate_json(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    if !doc.is_obj() {
        return Err("report must be a JSON object".to_string());
    }
    let version = require_num(&doc, "schema_version", "root")?;
    if version < MIN_SCHEMA_VERSION as f64 || version > SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema_version {version} outside supported {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION}"
        ));
    }
    let v3 = version >= 3.0;
    let v4 = version >= 4.0;
    let v5 = version >= 5.0;
    let v6 = version >= 6.0;
    require_str(&doc, "generated_by", "root")?;

    for (i, a) in require_arr(&doc, "anchors")?.iter().enumerate() {
        let ctx = format!("anchors[{i}]");
        require_str(a, "name", &ctx)?;
        require_num(a, "paper_us", &ctx)?;
        require_num(a, "measured_us", &ctx)?;
        require_num(a, "deviation_pct", &ctx)?;
    }
    for (i, t) in require_arr(&doc, "tables")?.iter().enumerate() {
        let ctx = format!("tables[{i}]");
        require_str(t, "title", &ctx)?;
        require_str(t, "unit", &ctx)?;
        let sizes = require(t, "sizes")
            .map_err(|e| format!("{ctx}: {e}"))?
            .as_arr()
            .ok_or_else(|| format!("{ctx}: 'sizes' must be an array"))?;
        for s in require(t, "series")
            .map_err(|e| format!("{ctx}: {e}"))?
            .as_arr()
            .ok_or_else(|| format!("{ctx}: 'series' must be an array"))?
        {
            require_str(s, "label", &ctx)?;
            let values = require(s, "values")
                .map_err(|e| format!("{ctx}: {e}"))?
                .as_arr()
                .ok_or_else(|| format!("{ctx}: 'values' must be an array"))?;
            if values.len() != sizes.len() {
                return Err(format!(
                    "{ctx}: series '{}' has {} values for {} sizes",
                    s.get("label").and_then(Json::as_str).unwrap_or("?"),
                    values.len(),
                    sizes.len()
                ));
            }
        }
    }
    for (i, c) in require_arr(&doc, "crossovers")?.iter().enumerate() {
        let ctx = format!("crossovers[{i}]");
        require_str(c, "incumbent", &ctx)?;
        require_str(c, "challenger", &ctx)?;
        let at = require(c, "at_bytes").map_err(|e| format!("{ctx}: {e}"))?;
        if !matches!(at, Json::Null | Json::Num(_)) {
            return Err(format!("{ctx}: 'at_bytes' must be a number or null"));
        }
    }
    for (i, l) in require_arr(&doc, "layers")?.iter().enumerate() {
        let ctx = format!("layers[{i}]");
        require_str(l, "layer", &ctx)?;
        require_num(l, "self_us", &ctx)?;
        require_num(l, "share_pct", &ctx)?;
    }
    let layering = require(&doc, "layering")?;
    if *layering != Json::Null {
        require_num(layering, "paper_us", "layering")?;
        require_num(layering, "measured_us", "layering")?;
        require_num(layering, "within_pct", "layering")?;
    }
    for (i, q) in require_arr(&doc, "quantiles")?.iter().enumerate() {
        let ctx = format!("quantiles[{i}]");
        require_str(q, "name", &ctx)?;
        for key in [
            "n", "min_us", "p50_us", "p90_us", "p99_us", "max_us", "mean_us",
        ] {
            require_num(q, key, &ctx)?;
        }
        if v3 {
            require_num(q, "p999_us", &ctx)?;
        }
    }
    if v3 {
        for (i, m) in require_arr(&doc, "messages")?.iter().enumerate() {
            let ctx = format!("messages[{i}]");
            require_num(m, "id", &ctx)?;
            require_num(m, "src", &ctx)?;
            require_num(m, "total_us", &ctx)?;
            for (j, s) in require(m, "stages")
                .map_err(|e| format!("{ctx}: {e}"))?
                .as_arr()
                .ok_or_else(|| format!("{ctx}: 'stages' must be an array"))?
                .iter()
                .enumerate()
            {
                let sctx = format!("{ctx}.stages[{j}]");
                require_str(s, "stage", &sctx)?;
                require_num(s, "at_us", &sctx)?;
                require_num(s, "node", &sctx)?;
            }
        }
    }
    if v5 {
        for (i, c) in require_arr(&doc, "capacity")?.iter().enumerate() {
            let ctx = format!("capacity[{i}]");
            require_str(c, "scenario", &ctx)?;
            for key in [
                "size",
                "p999_target_us",
                "max_sustainable_hz",
                "max_sustainable_mult",
            ] {
                require_num(c, key, &ctx)?;
            }
            for (j, cell) in require(c, "cells")
                .map_err(|e| format!("{ctx}: {e}"))?
                .as_arr()
                .ok_or_else(|| format!("{ctx}: 'cells' must be an array"))?
                .iter()
                .enumerate()
            {
                let cctx = format!("{ctx}.cells[{j}]");
                for key in [
                    "seed",
                    "mult",
                    "offered_hz",
                    "completed_hz",
                    "p999_us",
                    "sheds_per_sec",
                    "violations",
                ] {
                    require_num(cell, key, &cctx)?;
                }
                let lim = require_str(cell, "limited_by", &cctx)?;
                if !matches!(lim, "none" | "latency" | "shed" | "violation") {
                    return Err(format!("{cctx}: unknown limited_by '{lim}'"));
                }
            }
        }
    }
    if v6 {
        for (i, t) in require_arr(&doc, "timeseries")?.iter().enumerate() {
            let ctx = format!("timeseries[{i}]");
            require_str(t, "name", &ctx)?;
            for key in ["node", "n", "min", "mean", "max", "last", "peak_at_us"] {
                require_num(t, key, &ctx)?;
            }
        }
        for (i, q) in require_arr(&doc, "quorum")?.iter().enumerate() {
            let ctx = format!("quorum[{i}]");
            for key in ["node", "stale_epoch_rejects", "freezes", "epoch_bumps"] {
                require_num(q, key, &ctx)?;
            }
        }
    }
    for (i, w) in require_arr(&doc, "wallclock")?.iter().enumerate() {
        let ctx = format!("wallclock[{i}]");
        require_str(w, "scenario", &ctx)?;
        for key in [
            "events",
            "sim_ns",
            "wall_ms",
            "events_per_sec",
            "sim_ns_per_sec",
            "peak_queue_depth",
        ] {
            require_num(w, key, &ctx)?;
        }
        if v4 {
            require_num(w, "threads", &ctx)?;
            for (j, s) in require(w, "shards")
                .map_err(|e| format!("{ctx}: {e}"))?
                .as_arr()
                .ok_or_else(|| format!("{ctx}: 'shards' must be an array"))?
                .iter()
                .enumerate()
            {
                let sctx = format!("{ctx}.shards[{j}]");
                for key in [
                    "shard",
                    "events",
                    "busy_passes",
                    "stall_passes",
                    "max_mailbox_depth",
                    "spilled",
                    "peak_queue_depth",
                    "utilization",
                ] {
                    require_num(s, key, &sctx)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            generated_by: "bench-report --quick".to_string(),
            anchors: vec![Anchor {
                name: "bbp_0B_one_way".to_string(),
                paper_us: 6.5,
                measured_us: 6.6,
            }],
            tables: vec![Table {
                title: "one-way latency".to_string(),
                unit: "us".to_string(),
                sizes: vec![0, 4],
                series: vec![Series {
                    label: "bbp".to_string(),
                    values: vec![6.5, 7.8],
                }],
            }],
            crossovers: vec![Crossover {
                incumbent: "pio".to_string(),
                challenger: "dma".to_string(),
                at_bytes: Some(1024),
            }],
            layers: vec![LayerRow {
                layer: "mpi".to_string(),
                self_us: 20.0,
                share_pct: 45.5,
            }],
            layering: Some(Layering {
                paper_us: PAPER_LAYERING_US,
                measured_us: 37.4,
            }),
            quantiles: vec![Quantiles {
                name: "mpi_pingpong_0B".to_string(),
                n: 8,
                min_us: 43.0,
                p50_us: 44.0,
                p90_us: 45.0,
                p99_us: 45.0,
                p999_us: 45.05,
                max_us: 45.1,
                mean_us: 44.2,
            }],
            messages: vec![MessageRow {
                id: (1 << 40) | 7,
                src: 0,
                total_us: 8.4,
                stages: vec![
                    MessageStage {
                        stage: "send_enter".to_string(),
                        at_us: 0.0,
                        node: 0,
                    },
                    MessageStage {
                        stage: "deliver".to_string(),
                        at_us: 8.4,
                        node: 1,
                    },
                ],
            }],
            wallclock: vec![Wallclock {
                scenario: "ring_bcast_stress_16node".to_string(),
                events: 500_000,
                sim_ns: 2_000_000_000,
                wall_ms: 120.0,
                events_per_sec: 4_166_666.0,
                sim_ns_per_sec: 1.6e10,
                peak_queue_depth: 48,
                threads: 1,
                shards: vec![],
            }],
            capacity: vec![CapacityScenario {
                scenario: "incast".to_string(),
                size: 64,
                p999_target_us: 400.0,
                max_sustainable_hz: 28_800.0,
                max_sustainable_mult: 1.0,
                cells: vec![
                    CapacityCell {
                        seed: 1,
                        mult: 1.0,
                        offered_hz: 28_800.0,
                        completed_hz: 28_650.0,
                        p999_us: 310.0,
                        sheds_per_sec: 0.0,
                        violations: 0,
                        limited_by: "none".to_string(),
                    },
                    CapacityCell {
                        seed: 1,
                        mult: 2.0,
                        offered_hz: 57_600.0,
                        completed_hz: 49_100.0,
                        p999_us: 910.0,
                        sheds_per_sec: 8_400.0,
                        violations: 0,
                        limited_by: "latency".to_string(),
                    },
                ],
            }],
            timeseries: vec![TimeseriesRow {
                name: "rpc.buffers_in_use".to_string(),
                node: 0,
                n: 1_200,
                min: 0.0,
                mean: 3.4,
                max: 16.0,
                last: 0.0,
                peak_at_us: 812.5,
            }],
            quorum: vec![QuorumRow {
                node: 2,
                stale_epoch_rejects: 3,
                freezes: 1,
                epoch_bumps: 2,
            }],
        }
    }

    #[test]
    fn sample_report_validates() {
        let text = sample().to_json();
        validate_json(&text).unwrap();
    }

    #[test]
    fn empty_report_validates() {
        let text = BenchReport::default().to_json();
        validate_json(&text).unwrap();
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let text = sample().to_json().replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": 99",
        );
        assert!(validate_json(&text).unwrap_err().contains("schema_version"));
        let old = sample().to_json().replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": 1",
        );
        assert!(validate_json(&old).unwrap_err().contains("schema_version"));
    }

    #[test]
    fn v2_documents_still_validate() {
        // A committed v2 baseline has no p999_us, no messages section,
        // no parallel-engine wallclock fields, and no capacity section;
        // the validator must dispatch to the v2 rules.
        let mut r = sample();
        r.messages.clear();
        r.capacity.clear();
        r.timeseries.clear();
        r.quorum.clear();
        let text = r
            .to_json()
            .replace(
                &format!("\"schema_version\": {SCHEMA_VERSION}"),
                "\"schema_version\": 2",
            )
            .replace(", \"p999_us\": 45.05", "")
            .replace("\"messages\": [\n  ],\n  ", "")
            .replace("\"capacity\": [\n  ],\n  ", "")
            .replace("\"timeseries\": [\n  ],\n  ", "")
            .replace("\"quorum\": [\n  ],\n  ", "")
            .replace(", \"threads\": 1, \"shards\": []", "");
        assert!(!text.contains("p999_us"));
        assert!(!text.contains("messages"));
        assert!(!text.contains("threads"));
        assert!(!text.contains("capacity"));
        assert!(!text.contains("timeseries"));
        validate_json(&text).unwrap();
    }

    #[test]
    fn v3_documents_still_validate() {
        // A committed v3 baseline predates the parallel-engine
        // wallclock fields and the capacity section.
        let mut r = sample();
        r.capacity.clear();
        r.timeseries.clear();
        r.quorum.clear();
        let text = r
            .to_json()
            .replace(
                &format!("\"schema_version\": {SCHEMA_VERSION}"),
                "\"schema_version\": 3",
            )
            .replace("\"capacity\": [\n  ],\n  ", "")
            .replace("\"timeseries\": [\n  ],\n  ", "")
            .replace("\"quorum\": [\n  ],\n  ", "")
            .replace(", \"threads\": 1, \"shards\": []", "");
        assert!(!text.contains("threads"));
        validate_json(&text).unwrap();
    }

    #[test]
    fn v4_documents_still_validate() {
        // A committed v4 baseline predates the capacity section.
        let mut r = sample();
        r.capacity.clear();
        r.timeseries.clear();
        r.quorum.clear();
        let text = r
            .to_json()
            .replace(
                &format!("\"schema_version\": {SCHEMA_VERSION}"),
                "\"schema_version\": 4",
            )
            .replace("\"capacity\": [\n  ],\n  ", "")
            .replace("\"timeseries\": [\n  ],\n  ", "")
            .replace("\"quorum\": [\n  ],\n  ", "");
        assert!(!text.contains("capacity"));
        validate_json(&text).unwrap();
    }

    #[test]
    fn v5_documents_still_validate() {
        // A committed v5 baseline predates the timeseries and quorum
        // sections.
        let mut r = sample();
        r.timeseries.clear();
        r.quorum.clear();
        let text = r
            .to_json()
            .replace(
                &format!("\"schema_version\": {SCHEMA_VERSION}"),
                "\"schema_version\": 5",
            )
            .replace("\"timeseries\": [\n  ],\n  ", "")
            .replace("\"quorum\": [\n  ],\n  ", "");
        assert!(!text.contains("timeseries"));
        assert!(!text.contains("quorum"));
        validate_json(&text).unwrap();
    }

    #[test]
    fn v6_requires_timeseries_and_quorum() {
        let no_ts = sample()
            .to_json()
            .replace("\"timeseries\"", "\"timezeries\"");
        assert!(validate_json(&no_ts).unwrap_err().contains("timeseries"));
        let no_quorum = sample().to_json().replace("\"quorum\"", "\"kworum\"");
        assert!(validate_json(&no_quorum).unwrap_err().contains("quorum"));
        let no_peak = sample()
            .to_json()
            .replace("\"peak_at_us\"", "\"peak_at_uz\"");
        assert!(validate_json(&no_peak).unwrap_err().contains("peak_at_us"));
        let no_rejects = sample()
            .to_json()
            .replace("\"stale_epoch_rejects\"", "\"stale_epoch_rejectz\"");
        assert!(validate_json(&no_rejects)
            .unwrap_err()
            .contains("stale_epoch_rejects"));
    }

    #[test]
    fn timeseries_row_summarizes_a_snapshot() {
        let tel = crate::timeseries::Telemetry::new();
        tel.enable();
        tel.observe(1_000, 3, "m", 2.0);
        tel.observe(5_000, 3, "m", 8.0);
        tel.observe(9_000, 3, "m", 5.0);
        let snaps = tel.snapshot();
        let row = TimeseriesRow::from_snapshot(&snaps[0]);
        assert_eq!(row.name, "m");
        assert_eq!(row.node, 3);
        assert_eq!(row.n, 3);
        assert!((row.min - 2.0).abs() < 1e-12);
        assert!((row.max - 8.0).abs() < 1e-12);
        assert!((row.last - 5.0).abs() < 1e-12);
        assert!((row.peak_at_us - 5.0).abs() < 1e-12);
    }

    #[test]
    fn v5_requires_the_capacity_section() {
        let no_capacity = sample().to_json().replace("\"capacity\"", "\"kapacity\"");
        assert!(validate_json(&no_capacity)
            .unwrap_err()
            .contains("capacity"));
        let no_sheds = sample()
            .to_json()
            .replace("\"sheds_per_sec\"", "\"sheds_per_sek\"");
        assert!(validate_json(&no_sheds)
            .unwrap_err()
            .contains("sheds_per_sec"));
        let bad_limit = sample()
            .to_json()
            .replace("\"limited_by\": \"latency\"", "\"limited_by\": \"vibes\"");
        assert!(validate_json(&bad_limit).unwrap_err().contains("vibes"));
    }

    #[test]
    fn v4_requires_parallel_engine_fields() {
        let no_threads = sample().to_json().replace("\"threads\"", "\"treads\"");
        assert!(validate_json(&no_threads).unwrap_err().contains("threads"));
        let no_shards = sample().to_json().replace("\"shards\"", "\"chards\"");
        assert!(validate_json(&no_shards).unwrap_err().contains("shards"));
    }

    #[test]
    fn shard_breakdown_round_trips_and_is_checked() {
        let mut r = sample();
        r.wallclock[0].threads = 4;
        r.wallclock[0].shards = vec![
            WallclockShard {
                shard: 0,
                events: 1000,
                busy_passes: 90,
                stall_passes: 10,
                max_mailbox_depth: 7,
                spilled: 0,
                peak_queue_depth: 33,
            },
            WallclockShard {
                shard: 1,
                events: 980,
                busy_passes: 80,
                stall_passes: 20,
                max_mailbox_depth: 5,
                spilled: 2,
                peak_queue_depth: 31,
            },
        ];
        let text = r.to_json();
        validate_json(&text).unwrap();
        assert!(text.contains("\"stall_passes\": 20"));
        let broken = text.replace("\"stall_passes\"", "\"stall_pazzes\"");
        assert!(validate_json(&broken).unwrap_err().contains("stall_passes"));
    }

    #[test]
    fn shard_utilization_is_busy_share() {
        let s = WallclockShard {
            shard: 0,
            events: 0,
            busy_passes: 3,
            stall_passes: 1,
            max_mailbox_depth: 0,
            spilled: 0,
            peak_queue_depth: 0,
        };
        assert!((s.utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn v3_requires_tail_percentiles_and_messages() {
        let no_tail = sample().to_json().replace("\"p999_us\"", "\"p999_uz\"");
        assert!(validate_json(&no_tail).unwrap_err().contains("p999_us"));
        let no_msgs = sample().to_json().replace("\"messages\"", "\"mezzages\"");
        assert!(validate_json(&no_msgs).unwrap_err().contains("messages"));
    }

    #[test]
    fn message_stages_are_checked() {
        let text = sample().to_json().replace("\"at_us\"", "\"at_uz\"");
        assert!(validate_json(&text).unwrap_err().contains("at_us"));
    }

    #[test]
    fn missing_wallclock_section_is_rejected() {
        let text = sample().to_json().replace("\"wallclock\"", "\"wallklock\"");
        assert!(validate_json(&text).unwrap_err().contains("wallclock"));
    }

    #[test]
    fn wallclock_entry_requires_throughput_fields() {
        let text = sample()
            .to_json()
            .replace("\"events_per_sec\"", "\"events_per_sek\"");
        assert!(validate_json(&text).unwrap_err().contains("events_per_sec"));
    }

    #[test]
    fn missing_key_is_rejected() {
        let text = sample().to_json().replace("\"anchors\"", "\"anchorz\"");
        assert!(validate_json(&text).unwrap_err().contains("anchors"));
    }

    #[test]
    fn ragged_series_is_rejected() {
        let mut r = sample();
        r.tables[0].series[0].values.pop();
        assert!(validate_json(&r.to_json()).unwrap_err().contains("values"));
    }

    #[test]
    fn layering_within_pct() {
        let l = Layering {
            paper_us: 37.5,
            measured_us: 41.25,
        };
        assert!((l.within_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn anchor_deviation() {
        let a = Anchor {
            name: "x".to_string(),
            paper_us: 10.0,
            measured_us: 11.0,
        };
        assert!((a.deviation_pct() - 10.0).abs() < 1e-9);
    }
}
