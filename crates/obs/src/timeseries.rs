//! Sim-time gauge sampling into fixed-capacity downsampling series.
//!
//! The event log (spans, counters, lifecycle) answers *what happened*;
//! this module answers *how the system's state evolved*: queue
//! residencies, credit balances, shard clock skew, membership grades —
//! anything a layer can express as "at sim-time `t`, gauge `g` on node
//! `n` had value `v`".
//!
//! Design constraints, in priority order:
//!
//! 1. **Disabled is free.** Telemetry has its *own* enable gate,
//!    separate from the recorder's event-log gate, so enabling a
//!    determinism trace never turns gauges on (and vice versa). A
//!    disabled [`Telemetry::observe`] is one relaxed atomic load —
//!    no locks, no allocation — pinned by `tests/obs_zero_cost.rs`.
//! 2. **Bounded memory, full-run coverage.** Each series holds at most
//!    [`SERIES_CAP`] buckets. Observations coalesce into the current
//!    bucket of width `bucket_ns`; when the buffer fills, adjacent
//!    buckets merge pairwise in place and the width doubles. A series
//!    therefore always spans the whole run at the finest resolution
//!    the budget allows, and steady-state sampling never allocates.
//! 3. **Absolute values, not deltas.** Call sites report the current
//!    occupancy/balance, so a series enabled mid-run is merely coarse
//!    at the front, never wrong.
//!
//! Every bucket keeps `min`/`max`/`last`/`sum`/`count` plus `steps`
//! (value *changes* observed), which is what the health monitor's
//! `step_rate_below` rule counts — membership grades flapping between
//! Alive and Suspected show up as steps even when min and max look
//! calm.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::json::write_f64;
use crate::Time;

/// Maximum buckets retained per series before pairwise merging.
pub const SERIES_CAP: usize = 256;

/// Initial bucket width (sampling cadence quantum): 1 µs of sim time.
pub const DEFAULT_BUCKET_NS: Time = 1_000;

/// One downsampling bucket: the aggregate of every observation that
/// landed in `[t0, t1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Sim time of the first observation in the bucket.
    pub t0: Time,
    /// Sim time of the last observation in the bucket.
    pub t1: Time,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Most recent observed value.
    pub last: f64,
    /// Sum of observed values (for means across merges).
    pub sum: f64,
    /// Number of observations folded in.
    pub count: u64,
    /// Number of value *changes* observed (flap detector fuel).
    pub steps: u64,
}

impl Bucket {
    fn seed(t: Time, v: f64) -> Self {
        Bucket {
            t0: t,
            t1: t,
            min: v,
            max: v,
            last: v,
            sum: v,
            count: 1,
            steps: 0,
        }
    }

    fn absorb(&mut self, t: Time, v: f64, changed: bool) {
        self.t1 = t;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.last = v;
        self.sum += v;
        self.count += 1;
        if changed {
            self.steps += 1;
        }
    }

    fn merge(&mut self, later: &Bucket) {
        self.t1 = later.t1;
        self.min = self.min.min(later.min);
        self.max = self.max.max(later.max);
        self.last = later.last;
        self.sum += later.sum;
        self.count += later.count;
        self.steps += later.steps;
    }
}

/// One registered gauge's series (internal mutable form).
#[derive(Debug)]
struct Series {
    name: &'static str,
    node: u32,
    bucket_ns: Time,
    buckets: Vec<Bucket>,
    cur: Option<Bucket>,
    /// Last value ever observed (step detection across buckets).
    last_value: f64,
    /// Total observations (survives downsampling exactly).
    observations: u64,
    /// Series-level extrema, tracked directly so the report summary is
    /// exact regardless of how coarse the buckets have become.
    min_v: f64,
    max_v: f64,
    sum_v: f64,
    /// Sim time the maximum was first reached.
    peak_at: Time,
}

impl Series {
    fn observe(&mut self, t: Time, v: f64) {
        let changed = self.observations > 0 && v != self.last_value;
        self.observations += 1;
        self.last_value = v;
        self.sum_v += v;
        self.min_v = self.min_v.min(v);
        if v > self.max_v {
            self.max_v = v;
            self.peak_at = t;
        }
        let idx = t / self.bucket_ns;
        match &mut self.cur {
            Some(b) if b.t0 / self.bucket_ns == idx => b.absorb(t, v, changed),
            Some(_) => {
                self.flush_cur();
                let mut b = Bucket::seed(t, v);
                if changed {
                    b.steps = 1;
                }
                self.cur = Some(b);
            }
            None => {
                let mut b = Bucket::seed(t, v);
                if changed {
                    b.steps = 1;
                }
                self.cur = Some(b);
            }
        }
    }

    /// Move the in-progress bucket into the ring, downsampling first if
    /// the ring is full. Pairwise in-place merge: no allocation.
    fn flush_cur(&mut self) {
        let Some(b) = self.cur.take() else { return };
        if self.buckets.len() == SERIES_CAP {
            let mut w = 0;
            let mut r = 0;
            while r + 1 < SERIES_CAP {
                let later = self.buckets[r + 1];
                self.buckets[w] = self.buckets[r];
                self.buckets[w].merge(&later);
                w += 1;
                r += 2;
            }
            if r < SERIES_CAP {
                self.buckets[w] = self.buckets[r];
                w += 1;
            }
            self.buckets.truncate(w);
            self.bucket_ns *= 2;
        }
        self.buckets.push(b);
    }

    fn snapshot(&self) -> SeriesSnapshot {
        let mut buckets = self.buckets.clone();
        if let Some(b) = self.cur {
            buckets.push(b);
        }
        SeriesSnapshot {
            name: self.name,
            node: self.node,
            bucket_ns: self.bucket_ns,
            buckets,
            observations: self.observations,
            min: self.min_v,
            max: self.max_v,
            mean: if self.observations == 0 {
                0.0
            } else {
                self.sum_v / self.observations as f64
            },
            last: self.last_value,
            peak_at: self.peak_at,
        }
    }
}

/// An immutable copy of one gauge's series, taken by
/// [`Telemetry::snapshot`]. This is what the exporters and the health
/// monitor consume.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Gauge name (dot-scoped by layer, e.g. `rpc.buffers_in_use`).
    pub name: &'static str,
    /// Owning node (or shard id for `par.*` gauges).
    pub node: u32,
    /// Current bucket width after downsampling.
    pub bucket_ns: Time,
    /// Retained buckets, oldest first.
    pub buckets: Vec<Bucket>,
    /// Total observations folded into the series.
    pub observations: u64,
    /// Exact series-level minimum.
    pub min: f64,
    /// Exact series-level maximum.
    pub max: f64,
    /// Exact series-level mean.
    pub mean: f64,
    /// Most recent observation.
    pub last: f64,
    /// Sim time the maximum was first reached.
    pub peak_at: Time,
}

impl SeriesSnapshot {
    /// Render this series as a standalone JSON object (the per-metric
    /// dump written next to flight rings when a health rule fires).
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(self.buckets.len() * 64 + 256);
        o.push_str("{\"metric\":");
        crate::json::write_string(&mut o, self.name);
        use std::fmt::Write as _;
        let _ = write!(
            o,
            ",\"node\":{},\"bucket_ns\":{},\"observations\":{},\"min\":",
            self.node, self.bucket_ns, self.observations
        );
        write_f64(&mut o, self.min);
        o.push_str(",\"mean\":");
        write_f64(&mut o, self.mean);
        o.push_str(",\"max\":");
        write_f64(&mut o, self.max);
        o.push_str(",\"last\":");
        write_f64(&mut o, self.last);
        let _ = writeln!(o, ",\"peak_at_ns\":{},\"points\":[", self.peak_at);
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                o.push_str(",\n");
            }
            let _ = write!(o, " {{\"t0\":{},\"t1\":{},\"min\":", b.t0, b.t1);
            write_f64(&mut o, b.min);
            o.push_str(",\"max\":");
            write_f64(&mut o, b.max);
            o.push_str(",\"last\":");
            write_f64(&mut o, b.last);
            let _ = write!(o, ",\"count\":{},\"steps\":{}}}", b.count, b.steps);
        }
        o.push_str("\n]}\n");
        o
    }

    /// Write this series' JSON dump to `$FLIGHT_DUMP_DIR` (default
    /// `target/flight/`), named `series_{slug}.json` — the same
    /// convention and directory as the flight-ring postmortems so one
    /// CI artifact upload collects both. Best-effort; returns the
    /// written path on success.
    pub fn dump_to_dir(&self, label: &str) -> Option<std::path::PathBuf> {
        let dir = std::env::var("FLIGHT_DUMP_DIR").unwrap_or_else(|_| "target/flight".to_string());
        let slug: String = format!("{label}_{}_{}", self.name, self.node)
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = std::path::Path::new(&dir).join(format!("series_{slug}.json"));
        std::fs::create_dir_all(&dir).ok()?;
        std::fs::write(&path, self.to_json()).ok()?;
        Some(path)
    }
}

/// The gauge registry: every [`crate::Recorder`] owns one.
///
/// Series are keyed `(name, node)` and created lazily on the first
/// enabled observation. The inner mutex is uncontended in sequential
/// simulation; `des::par` worker threads sampling concurrently contend
/// briefly, which is acceptable because telemetry is diagnostic and
/// never golden-gated.
#[derive(Debug)]
pub struct Telemetry {
    enabled: AtomicBool,
    series: Mutex<Vec<Series>>,
}

impl Telemetry {
    /// A disabled, empty registry.
    pub fn new() -> Self {
        Telemetry {
            enabled: AtomicBool::new(false),
            series: Mutex::new(Vec::new()),
        }
    }

    /// Whether gauge sampling is on. One relaxed load; `#[inline]` so
    /// instrumentation sites can gate value computation on it.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Clear all series and start sampling.
    pub fn enable(&self) {
        self.lock().clear();
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop sampling (series are kept for snapshots).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Series>> {
        self.series.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record that gauge `name` on `node` had absolute value `value` at
    /// sim time `time`. Disabled: one relaxed load. Enabled: coalesces
    /// into the series' current bucket; allocation only on the very
    /// first observation of a new `(name, node)` pair.
    #[inline]
    pub fn observe(&self, time: Time, node: u32, name: &'static str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.observe_slow(time, node, name, value);
    }

    #[cold]
    fn observe_slow(&self, time: Time, node: u32, name: &'static str, value: f64) {
        let mut all = self.lock();
        match all.iter_mut().find(|s| s.name == name && s.node == node) {
            Some(s) => s.observe(time, value),
            None => {
                let mut s = Series {
                    name,
                    node,
                    bucket_ns: DEFAULT_BUCKET_NS,
                    buckets: Vec::with_capacity(SERIES_CAP),
                    cur: None,
                    last_value: 0.0,
                    observations: 0,
                    min_v: f64::INFINITY,
                    max_v: f64::NEG_INFINITY,
                    sum_v: 0.0,
                    peak_at: 0,
                };
                s.observe(time, value);
                all.push(s);
            }
        }
    }

    /// Immutable copies of every series, sorted by `(name, node)` for
    /// stable export order.
    pub fn snapshot(&self) -> Vec<SeriesSnapshot> {
        let mut out: Vec<SeriesSnapshot> = self.lock().iter().map(Series::snapshot).collect();
        out.sort_unstable_by(|a, b| (a.name, a.node).cmp(&(b.name, b.node)));
        out
    }

    /// Number of registered series.
    pub fn series_count(&self) -> usize {
        self.lock().len()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observe_registers_nothing() {
        let t = Telemetry::new();
        t.observe(1_000, 0, "q.depth", 3.0);
        assert_eq!(t.series_count(), 0);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn observations_coalesce_into_sim_time_buckets() {
        let t = Telemetry::new();
        t.enable();
        // Three observations inside one 1 µs bucket, one in the next.
        t.observe(100, 0, "q.depth", 1.0);
        t.observe(400, 0, "q.depth", 5.0);
        t.observe(900, 0, "q.depth", 2.0);
        t.observe(1_500, 0, "q.depth", 7.0);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 1);
        let s = &snap[0];
        assert_eq!(s.buckets.len(), 2);
        assert_eq!(
            (s.buckets[0].min, s.buckets[0].max, s.buckets[0].last),
            (1.0, 5.0, 2.0)
        );
        assert_eq!(s.buckets[0].count, 3);
        assert_eq!(s.buckets[0].steps, 2, "1→5 and 5→2 are changes");
        assert_eq!(s.buckets[1].steps, 1, "2→7 crosses the bucket edge");
        assert_eq!((s.min, s.max, s.last), (1.0, 7.0, 7.0));
        assert_eq!(s.peak_at, 1_500);
        assert_eq!(s.observations, 4);
        assert!((s.mean - 15.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn series_are_keyed_by_name_and_node() {
        let t = Telemetry::new();
        t.enable();
        t.observe(0, 0, "a", 1.0);
        t.observe(0, 1, "a", 2.0);
        t.observe(0, 0, "b", 3.0);
        let snap = t.snapshot();
        let keys: Vec<(&str, u32)> = snap.iter().map(|s| (s.name, s.node)).collect();
        assert_eq!(keys, vec![("a", 0), ("a", 1), ("b", 0)]);
    }

    #[test]
    fn overflow_downsamples_pairwise_and_doubles_bucket_width() {
        let t = Telemetry::new();
        t.enable();
        // One observation per 1 µs bucket: cap + 64 closed buckets.
        let n = (SERIES_CAP + 64) as u64;
        for i in 0..=n {
            t.observe(i * DEFAULT_BUCKET_NS, 0, "q", i as f64);
        }
        let snap = t.snapshot();
        let s = &snap[0];
        assert_eq!(s.bucket_ns, 2 * DEFAULT_BUCKET_NS);
        assert!(s.buckets.len() <= SERIES_CAP + 1);
        // Nothing was dropped: totals survive the merge exactly.
        let total: u64 = s.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, n + 1);
        assert_eq!(s.observations, n + 1);
        // Coverage is the whole run, min/max exact.
        assert_eq!(s.buckets[0].t0, 0);
        assert_eq!(s.buckets.last().unwrap().t1, n * DEFAULT_BUCKET_NS);
        assert_eq!((s.min, s.max), (0.0, n as f64));
        assert_eq!(s.peak_at, n * DEFAULT_BUCKET_NS);
        // Buckets stay time-ordered and non-overlapping after merging.
        for w in s.buckets.windows(2) {
            assert!(w[0].t1 <= w[1].t0);
        }
    }

    #[test]
    fn repeated_overflow_keeps_memory_bounded() {
        let t = Telemetry::new();
        t.enable();
        for i in 0..20_000u64 {
            t.observe(i * DEFAULT_BUCKET_NS, 0, "q", (i % 7) as f64);
        }
        let s = &t.snapshot()[0];
        assert!(s.buckets.len() <= SERIES_CAP + 1);
        assert!(s.bucket_ns >= 64 * DEFAULT_BUCKET_NS);
        assert_eq!(s.observations, 20_000);
        let steps: u64 = s.buckets.iter().map(|b| b.steps).sum();
        assert_eq!(
            steps, 19_999,
            "every %7 sample differs from its predecessor"
        );
    }

    #[test]
    fn enable_clears_previous_series() {
        let t = Telemetry::new();
        t.enable();
        t.observe(0, 0, "q", 1.0);
        assert_eq!(t.series_count(), 1);
        t.enable();
        assert_eq!(t.series_count(), 0);
    }

    #[test]
    fn snapshot_json_parses_back() {
        let t = Telemetry::new();
        t.enable();
        t.observe(100, 2, "bbp.credit_balance", 32.0);
        t.observe(2_200, 2, "bbp.credit_balance", 30.0);
        let s = &t.snapshot()[0];
        let doc = crate::json::parse(&s.to_json()).expect("series dump must be valid JSON");
        assert_eq!(
            doc.get("metric").unwrap().as_str(),
            Some("bbp.credit_balance")
        );
        assert_eq!(doc.get("node").unwrap().as_f64(), Some(2.0));
        assert_eq!(doc.get("points").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("max").unwrap().as_f64(), Some(32.0));
        assert_eq!(doc.get("peak_at_ns").unwrap().as_f64(), Some(100.0));
    }
}
