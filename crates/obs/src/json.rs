//! A minimal JSON writer and parser. The build environment has no
//! registry access, so the exporters hand-roll their JSON; the parser
//! exists for schema validation and golden-file tests, not performance.

use std::fmt::Write as _;

/// Append `s` as a JSON string literal (with escaping) to `out`.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` formatted deterministically: integers exactly, non-integers
/// with three decimal places (sub-nanosecond noise would break golden
/// files).
pub fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v:.3}");
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, preserving key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True when this is an object.
    pub fn is_obj(&self) -> bool {
        matches!(self, Json::Obj(_))
    }
}

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed by our own output.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && b[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_basics() {
        let doc = r#"{"a": 1, "b": [true, null, "x\ny"], "c": {"d": -2.5}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.0));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::Bool(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(arr[2].as_str(), Some("x\ny"));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(-2.5));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn writer_escapes_and_parses_back() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\nd\u{1}");
        let v = parse(&out).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{1}"));
    }

    #[test]
    fn f64_formatting_is_deterministic() {
        let mut out = String::new();
        write_f64(&mut out, 37.5);
        out.push(' ');
        write_f64(&mut out, 44.0);
        out.push(' ');
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "37.500 44 null");
    }

    #[test]
    fn unicode_survives() {
        let v = parse("\"µs ≈ ok\"").unwrap();
        assert_eq!(v.as_str(), Some("µs ≈ ok"));
    }
}
