//! The declarative health monitor: invariants over telemetry series.
//!
//! Every campaign (fault, chaos, partition, workload) used to
//! re-implement its invariants as ad-hoc test code — "residency never
//! exceeded the pool", "the unexpected queue drained", "membership
//! didn't flap". A [`HealthSpec`] states those as rules over the gauge
//! series recorded by [`crate::timeseries::Telemetry`]:
//!
//! - [`never_above`](HealthSpec::never_above) — the series' max must
//!   never exceed a threshold (pool residency, park bounds);
//! - [`sustained_above`](HealthSpec::sustained_above) — the series may
//!   spike over a threshold but must not *stay* there for a full
//!   sim-time window (backlog that never recovers);
//! - [`settles_to_zero_by`](HealthSpec::settles_to_zero_by) — the
//!   series must be zero from a deadline onward (drain checks);
//! - [`step_rate_below`](HealthSpec::step_rate_below) — at most N value
//!   changes inside any sliding window (membership flap detection).
//!
//! Evaluation consumes a [`Telemetry::snapshot`] and produces typed
//! [`Violation`]s carrying the offending metric, node, and sim-time
//! window, so a failing campaign cell can dump exactly the series that
//! broke the rule next to its flight-ring postmortem.
//!
//! Resolution caveat: rules are evaluated at the series' current bucket
//! granularity. `sustained_above` uses bucket *minima* (no false
//! positives from transient spikes) and `step_rate_below` only counts
//! windows no wider than requested, so downsampling can make a rule
//! *miss* a marginal violation but never invent one.
//!
//! [`Telemetry::snapshot`]: crate::timeseries::Telemetry::snapshot

use crate::timeseries::SeriesSnapshot;
use crate::Time;

/// One declarative rule (see [`HealthSpec`] builder methods).
#[derive(Debug, Clone)]
enum RuleKind {
    SustainedAbove { threshold: f64, window_ns: Time },
    NeverAbove { threshold: f64 },
    SettlesToZeroBy { deadline_ns: Time },
    StepRateBelow { max_steps: u64, window_ns: Time },
}

#[derive(Debug, Clone)]
struct Rule {
    metric: String,
    node: Option<u32>,
    kind: RuleKind,
}

impl Rule {
    fn describe(&self) -> String {
        let scope = match self.node {
            Some(n) => format!("{}@{n}", self.metric),
            None => self.metric.clone(),
        };
        match &self.kind {
            RuleKind::SustainedAbove {
                threshold,
                window_ns,
            } => format!("sustained_above({scope} > {threshold} for {window_ns}ns)"),
            RuleKind::NeverAbove { threshold } => format!("never_above({scope} <= {threshold})"),
            RuleKind::SettlesToZeroBy { deadline_ns } => {
                format!("settles_to_zero_by({scope}, {deadline_ns}ns)")
            }
            RuleKind::StepRateBelow {
                max_steps,
                window_ns,
            } => format!("step_rate_below({scope} <= {max_steps} steps per {window_ns}ns)"),
        }
    }
}

/// A rule that failed: which invariant, on which series, where in sim
/// time, and what was observed there.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Human-readable rendering of the violated rule.
    pub rule: String,
    /// Metric name of the offending series.
    pub metric: String,
    /// Node (or shard) of the offending series.
    pub node: u32,
    /// Sim-time window `[t0, t1]` where the rule broke.
    pub window: (Time, Time),
    /// The observed value that broke the rule (threshold excess, final
    /// residue, or step count, depending on the rule).
    pub observed: f64,
}

impl Violation {
    /// One-line rendering for campaign violation digests.
    pub fn describe(&self) -> String {
        format!(
            "health: {} violated by {}@{} in [{}ns, {}ns]: observed {}",
            self.rule, self.metric, self.node, self.window.0, self.window.1, self.observed
        )
    }
}

/// A set of health rules evaluated together over one telemetry
/// snapshot. Build with the chained rule methods; scope the most
/// recently added rule to one node with [`on_node`](Self::on_node)
/// (default: every node that recorded the metric).
#[derive(Debug, Clone, Default)]
pub struct HealthSpec {
    rules: Vec<Rule>,
}

impl HealthSpec {
    /// An empty spec (always passes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fail if `metric` stays strictly above `threshold` for a
    /// contiguous sim-time span of at least `window_ns`. A series that
    /// spikes and recovers inside the window passes.
    pub fn sustained_above(mut self, metric: &str, threshold: f64, window_ns: Time) -> Self {
        self.rules.push(Rule {
            metric: metric.to_string(),
            node: None,
            kind: RuleKind::SustainedAbove {
                threshold,
                window_ns,
            },
        });
        self
    }

    /// Fail if `metric` ever exceeds `threshold`.
    pub fn never_above(mut self, metric: &str, threshold: f64) -> Self {
        self.rules.push(Rule {
            metric: metric.to_string(),
            node: None,
            kind: RuleKind::NeverAbove { threshold },
        });
        self
    }

    /// Fail unless `metric` is zero from `deadline_ns` onward (and ends
    /// at zero). The drain check: queues may fill mid-run but must be
    /// empty by the deadline and stay empty.
    pub fn settles_to_zero_by(mut self, metric: &str, deadline_ns: Time) -> Self {
        self.rules.push(Rule {
            metric: metric.to_string(),
            node: None,
            kind: RuleKind::SettlesToZeroBy { deadline_ns },
        });
        self
    }

    /// Fail if `metric` changes value more than `max_steps` times
    /// inside any sliding window of `window_ns`. The flap detector:
    /// a membership grade bouncing Alive↔Suspected trips this even
    /// when its min/max envelope looks calm.
    pub fn step_rate_below(mut self, metric: &str, max_steps: u64, window_ns: Time) -> Self {
        self.rules.push(Rule {
            metric: metric.to_string(),
            node: None,
            kind: RuleKind::StepRateBelow {
                max_steps,
                window_ns,
            },
        });
        self
    }

    /// Scope the most recently added rule to `node` only.
    pub fn on_node(mut self, node: u32) -> Self {
        if let Some(r) = self.rules.last_mut() {
            r.node = Some(node);
        }
        self
    }

    /// Number of rules in the spec.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the spec has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluate every rule against `snapshot`, returning all
    /// violations (empty = healthy). A rule that names a metric nobody
    /// recorded passes vacuously — specs are shared across campaign
    /// cells whose scenarios instrument different subsets.
    pub fn evaluate(&self, snapshot: &[SeriesSnapshot]) -> Vec<Violation> {
        let mut out = Vec::new();
        for rule in &self.rules {
            for s in snapshot {
                if s.name != rule.metric || rule.node.is_some_and(|n| n != s.node) {
                    continue;
                }
                if let Some((window, observed)) = check(&rule.kind, s) {
                    out.push(Violation {
                        rule: rule.describe(),
                        metric: s.name.to_string(),
                        node: s.node,
                        window,
                        observed,
                    });
                }
            }
        }
        out
    }

    /// Evaluate and, for every violation, dump the offending series'
    /// JSON next to the flight-ring postmortems (see
    /// [`SeriesSnapshot::dump_to_dir`]). Returns the violations.
    pub fn evaluate_and_dump(&self, snapshot: &[SeriesSnapshot], label: &str) -> Vec<Violation> {
        let violations = self.evaluate(snapshot);
        for v in &violations {
            if let Some(s) = snapshot
                .iter()
                .find(|s| s.name == v.metric && s.node == v.node)
            {
                s.dump_to_dir(label);
            }
        }
        violations
    }
}

/// Check one rule against one matching series. Returns the offending
/// window and observed value on failure.
fn check(kind: &RuleKind, s: &SeriesSnapshot) -> Option<((Time, Time), f64)> {
    match kind {
        RuleKind::NeverAbove { threshold } => {
            let b = s.buckets.iter().find(|b| b.max > *threshold)?;
            Some(((b.t0, b.t1), b.max))
        }
        RuleKind::SustainedAbove {
            threshold,
            window_ns,
        } => {
            // Maximal runs of buckets whose *minimum* stays above the
            // threshold. Gaps between observations hold the last value,
            // so consecutive qualifying buckets form one run.
            let mut run: Option<(Time, Time, f64)> = None;
            for b in &s.buckets {
                if b.min > *threshold {
                    run = Some(match run {
                        Some((t0, _, lo)) => (t0, b.t1, lo.min(b.min)),
                        None => (b.t0, b.t1, b.min),
                    });
                    if let Some((t0, t1, lo)) = run {
                        if t1.saturating_sub(t0) >= *window_ns {
                            return Some(((t0, t1), lo));
                        }
                    }
                } else {
                    run = None;
                }
            }
            None
        }
        RuleKind::SettlesToZeroBy { deadline_ns } => {
            if s.last != 0.0 {
                let (t0, t1) = s.buckets.last().map_or((0, 0), |b| (b.t0, b.t1));
                return Some(((t0, t1), s.last));
            }
            let b = s
                .buckets
                .iter()
                .rev()
                .find(|b| b.max != 0.0 && b.t1 > *deadline_ns)?;
            Some(((b.t0, b.t1), b.max))
        }
        RuleKind::StepRateBelow {
            max_steps,
            window_ns,
        } => {
            // Two-pointer sweep over windows no wider than requested;
            // coarse buckets can hide a marginal flap but never invent
            // one.
            let n = s.buckets.len();
            for i in 0..n {
                let mut steps = 0u64;
                for b in &s.buckets[i..] {
                    if b.t1.saturating_sub(s.buckets[i].t0) > *window_ns {
                        break;
                    }
                    steps += b.steps;
                    if steps > *max_steps {
                        return Some(((s.buckets[i].t0, b.t1), steps as f64));
                    }
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::Telemetry;

    fn series(points: &[(Time, f64)]) -> Vec<SeriesSnapshot> {
        let t = Telemetry::new();
        t.enable();
        for (time, v) in points {
            t.observe(*time, 0, "m", *v);
        }
        t.snapshot()
    }

    #[test]
    fn never_above_passes_at_threshold_and_fails_over_it() {
        let snap = series(&[(0, 1.0), (1_000, 4.0), (2_000, 2.0)]);
        assert!(HealthSpec::new()
            .never_above("m", 4.0)
            .evaluate(&snap)
            .is_empty());
        let v = HealthSpec::new().never_above("m", 3.0).evaluate(&snap);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].window, (1_000, 1_000));
        assert_eq!(v[0].observed, 4.0);
        assert!(v[0].describe().contains("never_above"));
    }

    #[test]
    fn sustained_above_ignores_transient_spikes() {
        // Spikes to 9 but recovers within the 5 µs window each time.
        let snap = series(&[
            (0, 9.0),
            (1_000, 1.0),
            (4_000, 9.0),
            (5_000, 1.0),
            (9_000, 1.0),
        ]);
        assert!(HealthSpec::new()
            .sustained_above("m", 5.0, 5_000)
            .evaluate(&snap)
            .is_empty());
    }

    #[test]
    fn sustained_above_catches_a_floor_that_never_recovers() {
        let snap = series(&[(0, 7.0), (2_000, 8.0), (4_000, 7.5), (6_000, 9.0)]);
        let v = HealthSpec::new()
            .sustained_above("m", 5.0, 6_000)
            .evaluate(&snap);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].window, (0, 6_000));
        assert_eq!(v[0].observed, 7.0, "the run's floor");
    }

    #[test]
    fn settles_to_zero_by_checks_deadline_and_residue() {
        let drained = series(&[(0, 3.0), (2_000, 1.0), (4_000, 0.0)]);
        assert!(HealthSpec::new()
            .settles_to_zero_by("m", 5_000)
            .evaluate(&drained)
            .is_empty());
        // Non-zero activity after the deadline.
        let late = HealthSpec::new()
            .settles_to_zero_by("m", 3_000)
            .evaluate(&drained);
        assert_eq!(late.len(), 0, "bucket at 4000 is already zero");
        let late = HealthSpec::new()
            .settles_to_zero_by("m", 1_000)
            .evaluate(&drained);
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].window, (2_000, 2_000));
        // Ends non-zero: always a violation.
        let stuck = series(&[(0, 3.0), (2_000, 2.0)]);
        let v = HealthSpec::new()
            .settles_to_zero_by("m", 10_000)
            .evaluate(&stuck);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].observed, 2.0);
    }

    #[test]
    fn step_rate_below_catches_flapping() {
        // Six changes inside 6 µs.
        let flap: Vec<(Time, f64)> = (0..7)
            .map(|i| (i as Time * 1_000, (i % 2) as f64))
            .collect();
        let snap = series(&flap);
        let v = HealthSpec::new()
            .step_rate_below("m", 3, 10_000)
            .evaluate(&snap);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].observed, 4.0, "first window to exceed the budget");
        // A monotone series never flaps.
        let calm = series(&[(0, 1.0), (1_000, 1.0), (2_000, 1.0)]);
        assert!(HealthSpec::new()
            .step_rate_below("m", 0, 10_000)
            .evaluate(&calm)
            .is_empty());
    }

    #[test]
    fn node_scoping_and_vacuous_metrics() {
        let t = Telemetry::new();
        t.enable();
        t.observe(0, 0, "m", 1.0);
        t.observe(0, 1, "m", 9.0);
        let snap = t.snapshot();
        // Scoped to the healthy node: passes.
        assert!(HealthSpec::new()
            .never_above("m", 5.0)
            .on_node(0)
            .evaluate(&snap)
            .is_empty());
        // Unscoped: node 1 violates.
        let v = HealthSpec::new().never_above("m", 5.0).evaluate(&snap);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].node, 1);
        // A metric nobody recorded passes vacuously.
        assert!(HealthSpec::new()
            .never_above("ghost", 0.0)
            .evaluate(&snap)
            .is_empty());
    }

    #[test]
    fn evaluate_and_dump_writes_the_offending_series() {
        let dir = std::env::temp_dir().join(format!("obs_health_dump_{}", std::process::id()));
        std::env::set_var("FLIGHT_DUMP_DIR", &dir);
        let snap = series(&[(0, 5.0)]);
        let v = HealthSpec::new()
            .never_above("m", 1.0)
            .evaluate_and_dump(&snap, "unit");
        std::env::remove_var("FLIGHT_DUMP_DIR");
        assert_eq!(v.len(), 1);
        let path = dir.join("series_unit_m_0.json");
        let text = std::fs::read_to_string(&path).expect("series dump must exist");
        assert!(crate::json::parse(&text).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
