//! Latency attribution: fold a span stream into per-layer *self time* —
//! the time a layer spent working that is not covered by a deeper
//! nested span. Summed over a ping-pong this is exactly the paper's
//! layering breakdown (the ≈37.5 µs MPI-over-BBP constant).

use crate::event::{Event, Layer};
use crate::Time;

/// Per-layer self-time totals over one event stream.
#[derive(Debug, Clone, Default)]
pub struct LayerBreakdown {
    /// Self time per layer, indexed by [`Layer::index`], nanoseconds.
    pub self_ns: [u64; Layer::COUNT],
    /// Total span-covered time (sum of all top-level span extents), ns.
    pub covered_ns: u64,
    /// Spans whose exit never arrived (still open at stream end) or whose
    /// exit had no matching enter. Non-zero means instrumentation bugs.
    pub unbalanced: u64,
}

impl LayerBreakdown {
    /// Self time of one layer, nanoseconds.
    pub fn layer_ns(&self, layer: Layer) -> u64 {
        self.self_ns[layer.index()]
    }

    /// Self time of one layer, microseconds.
    pub fn layer_us(&self, layer: Layer) -> f64 {
        self.layer_ns(layer) as f64 / 1000.0
    }

    /// Sum of self time over `layers`, microseconds.
    pub fn sum_us(&self, layers: &[Layer]) -> f64 {
        layers.iter().map(|&l| self.layer_us(l)).sum()
    }

    /// `(layer, self µs)` rows in stack order, skipping empty layers.
    pub fn rows_us(&self) -> Vec<(Layer, f64)> {
        Layer::ALL
            .iter()
            .filter(|l| self.layer_ns(**l) > 0)
            .map(|&l| (l, self.layer_us(l)))
            .collect()
    }
}

struct Frame {
    layer: Layer,
    enter: Time,
    child_ns: u64,
}

/// Attribute span time to layers. Spans nest per node: each exit closes
/// the most recent open span of the same layer on that node (enter/exit
/// names are informational). Events must be in recording order, which
/// the simulator guarantees is time-ordered.
pub fn attribute(events: &[Event]) -> LayerBreakdown {
    // Per-node span stacks, keyed by node id. Nodes are small integers
    // (plus NO_NODE), so a sorted Vec beats a HashMap here.
    let mut stacks: Vec<(u32, Vec<Frame>)> = Vec::new();
    let mut out = LayerBreakdown::default();

    for ev in events {
        match *ev {
            Event::SpanEnter {
                time, node, layer, ..
            } => {
                let stack = match stacks.iter_mut().find(|(n, _)| *n == node) {
                    Some((_, s)) => s,
                    None => {
                        stacks.push((node, Vec::new()));
                        &mut stacks.last_mut().expect("just pushed").1
                    }
                };
                stack.push(Frame {
                    layer,
                    enter: time,
                    child_ns: 0,
                });
            }
            Event::SpanExit {
                time, node, layer, ..
            } => {
                let Some((_, stack)) = stacks.iter_mut().find(|(n, _)| *n == node) else {
                    out.unbalanced += 1;
                    continue;
                };
                // Close the innermost open span of this layer; anything
                // deeper that was left open is itself unbalanced.
                let Some(pos) = stack.iter().rposition(|f| f.layer == layer) else {
                    out.unbalanced += 1;
                    continue;
                };
                out.unbalanced += (stack.len() - pos - 1) as u64;
                stack.truncate(pos + 1);
                let frame = stack.pop().expect("rposition guarantees an element");
                let extent = time.saturating_sub(frame.enter);
                let self_ns = extent.saturating_sub(frame.child_ns);
                out.self_ns[layer.index()] += self_ns;
                match stack.last_mut() {
                    Some(parent) => parent.child_ns += extent,
                    None => out.covered_ns += extent,
                }
            }
            Event::Count { .. } | Event::Sched(_) => {}
        }
    }
    for (_, stack) in &stacks {
        out.unbalanced += stack.len() as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enter(time: Time, node: u32, layer: Layer) -> Event {
        Event::SpanEnter {
            time,
            node,
            layer,
            name: "x",
        }
    }

    fn exit(time: Time, node: u32, layer: Layer) -> Event {
        Event::SpanExit {
            time,
            node,
            layer,
            name: "x",
        }
    }

    #[test]
    fn nested_spans_attribute_self_time() {
        // mpi [0,100] wrapping adi [10,40] wrapping nic [20,25].
        let events = [
            enter(0, 0, Layer::Mpi),
            enter(10, 0, Layer::Adi),
            enter(20, 0, Layer::Nic),
            exit(25, 0, Layer::Nic),
            exit(40, 0, Layer::Adi),
            exit(100, 0, Layer::Mpi),
        ];
        let b = attribute(&events);
        assert_eq!(b.layer_ns(Layer::Nic), 5);
        assert_eq!(b.layer_ns(Layer::Adi), 25);
        assert_eq!(b.layer_ns(Layer::Mpi), 70);
        assert_eq!(b.covered_ns, 100);
        assert_eq!(b.unbalanced, 0);
    }

    #[test]
    fn nodes_do_not_interfere() {
        let events = [
            enter(0, 0, Layer::Bbp),
            enter(5, 1, Layer::Bbp),
            exit(10, 0, Layer::Bbp),
            exit(25, 1, Layer::Bbp),
        ];
        let b = attribute(&events);
        assert_eq!(b.layer_ns(Layer::Bbp), 10 + 20);
        assert_eq!(b.covered_ns, 30);
        assert_eq!(b.unbalanced, 0);
    }

    #[test]
    fn sequential_spans_sum() {
        let events = [
            enter(0, 0, Layer::Ring),
            exit(3, 0, Layer::Ring),
            enter(10, 0, Layer::Ring),
            exit(14, 0, Layer::Ring),
        ];
        let b = attribute(&events);
        assert_eq!(b.layer_ns(Layer::Ring), 7);
        // The 3..10 gap is not covered by any span.
        assert_eq!(b.covered_ns, 7);
    }

    #[test]
    fn unbalanced_spans_are_counted_not_crashing() {
        let events = [
            enter(0, 0, Layer::Mpi),
            exit(5, 0, Layer::Adi),  // exit without enter
            enter(6, 0, Layer::Nic), // never exits
        ];
        let b = attribute(&events);
        assert_eq!(b.unbalanced, 3); // bad exit + open nic + open mpi
    }

    #[test]
    fn rows_skip_empty_layers() {
        let events = [enter(0, 2, Layer::Channel), exit(9, 2, Layer::Channel)];
        let rows = attribute(&events).rows_us();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, Layer::Channel);
        assert!((rows[0].1 - 0.009).abs() < 1e-12);
    }
}
