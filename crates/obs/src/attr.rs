//! Latency attribution: fold a span stream into per-layer *self time* —
//! the time a layer spent working that is not covered by a deeper
//! nested span. Summed over a ping-pong this is exactly the paper's
//! layering breakdown (the ≈37.5 µs MPI-over-BBP constant).

use crate::event::{Event, Layer};
use crate::lifecycle::Stage;
use crate::Time;

/// Per-layer self-time totals over one event stream.
#[derive(Debug, Clone, Default)]
pub struct LayerBreakdown {
    /// Self time per layer, indexed by [`Layer::index`], nanoseconds.
    pub self_ns: [u64; Layer::COUNT],
    /// Total span-covered time (sum of all top-level span extents), ns.
    pub covered_ns: u64,
    /// Spans whose exit never arrived (still open at stream end) or whose
    /// exit had no matching enter. Non-zero means instrumentation bugs.
    pub unbalanced: u64,
}

impl LayerBreakdown {
    /// Self time of one layer, nanoseconds.
    pub fn layer_ns(&self, layer: Layer) -> u64 {
        self.self_ns[layer.index()]
    }

    /// Self time of one layer, microseconds.
    pub fn layer_us(&self, layer: Layer) -> f64 {
        self.layer_ns(layer) as f64 / 1000.0
    }

    /// Sum of self time over `layers`, microseconds.
    pub fn sum_us(&self, layers: &[Layer]) -> f64 {
        layers.iter().map(|&l| self.layer_us(l)).sum()
    }

    /// `(layer, self µs)` rows in stack order, skipping empty layers.
    pub fn rows_us(&self) -> Vec<(Layer, f64)> {
        Layer::ALL
            .iter()
            .filter(|l| self.layer_ns(**l) > 0)
            .map(|&l| (l, self.layer_us(l)))
            .collect()
    }
}

struct Frame {
    layer: Layer,
    enter: Time,
    child_ns: u64,
}

/// Attribute span time to layers. Spans nest per node: each exit closes
/// the most recent open span of the same layer on that node (enter/exit
/// names are informational). Events must be in recording order, which
/// the simulator guarantees is time-ordered.
pub fn attribute(events: &[Event]) -> LayerBreakdown {
    // Per-node span stacks, keyed by node id. Nodes are small integers
    // (plus NO_NODE), so a sorted Vec beats a HashMap here.
    let mut stacks: Vec<(u32, Vec<Frame>)> = Vec::new();
    let mut out = LayerBreakdown::default();

    for ev in events {
        match *ev {
            Event::SpanEnter {
                time, node, layer, ..
            } => {
                let stack = match stacks.iter_mut().find(|(n, _)| *n == node) {
                    Some((_, s)) => s,
                    None => {
                        stacks.push((node, Vec::new()));
                        &mut stacks.last_mut().expect("just pushed").1
                    }
                };
                stack.push(Frame {
                    layer,
                    enter: time,
                    child_ns: 0,
                });
            }
            Event::SpanExit {
                time, node, layer, ..
            } => {
                let Some((_, stack)) = stacks.iter_mut().find(|(n, _)| *n == node) else {
                    out.unbalanced += 1;
                    continue;
                };
                // Close the innermost open span of this layer; anything
                // deeper that was left open is itself unbalanced.
                let Some(pos) = stack.iter().rposition(|f| f.layer == layer) else {
                    out.unbalanced += 1;
                    continue;
                };
                out.unbalanced += (stack.len() - pos - 1) as u64;
                stack.truncate(pos + 1);
                let frame = stack.pop().expect("rposition guarantees an element");
                let extent = time.saturating_sub(frame.enter);
                let self_ns = extent.saturating_sub(frame.child_ns);
                out.self_ns[layer.index()] += self_ns;
                match stack.last_mut() {
                    Some(parent) => parent.child_ns += extent,
                    None => out.covered_ns += extent,
                }
            }
            Event::Count { .. } | Event::Lifecycle { .. } | Event::Sched(_) => {}
        }
    }
    for (_, stack) in &stacks {
        out.unbalanced += stack.len() as u64;
    }
    out
}

/// One recorded step of a message's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaterfallStep {
    /// Virtual time of the checkpoint, ns.
    pub time: Time,
    /// Node the checkpoint happened on.
    pub node: u32,
    /// Which checkpoint.
    pub stage: Stage,
    /// Stage argument (hop node, target rank, attempt, …).
    pub arg: u64,
}

/// One message's reconstructed latency waterfall: every lifecycle
/// checkpoint recorded against its trace id, in time order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageWaterfall {
    /// The trace id.
    pub id: u64,
    /// Origin node, decoded from the id's high bits.
    pub src: u32,
    /// Checkpoints in recording (= time) order.
    pub steps: Vec<WaterfallStep>,
}

impl MessageWaterfall {
    /// Total span from the first to the last checkpoint, ns.
    pub fn total_ns(&self) -> u64 {
        match (self.steps.first(), self.steps.last()) {
            (Some(a), Some(b)) => b.time.saturating_sub(a.time),
            _ => 0,
        }
    }

    /// Time of the first checkpoint with `stage`, if recorded.
    pub fn stage_time(&self, stage: Stage) -> Option<Time> {
        self.steps.iter().find(|s| s.stage == stage).map(|s| s.time)
    }
}

/// Group the stream's [`Event::Lifecycle`] entries into per-message
/// waterfalls, ordered by each message's first checkpoint. Untraced
/// events (id 0) are skipped — they have no journey to reconstruct.
pub fn message_waterfalls(events: &[Event]) -> Vec<MessageWaterfall> {
    let mut out: Vec<MessageWaterfall> = Vec::new();
    for ev in events {
        let Event::Lifecycle {
            time,
            node,
            id,
            stage,
            arg,
        } = *ev
        else {
            continue;
        };
        if id == 0 {
            continue;
        }
        let step = WaterfallStep {
            time,
            node,
            stage,
            arg,
        };
        match out.iter_mut().find(|w| w.id == id) {
            Some(w) => w.steps.push(step),
            None => out.push(MessageWaterfall {
                id,
                src: (id >> 40).saturating_sub(1) as u32,
                steps: vec![step],
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enter(time: Time, node: u32, layer: Layer) -> Event {
        Event::SpanEnter {
            time,
            node,
            layer,
            name: "x",
        }
    }

    fn exit(time: Time, node: u32, layer: Layer) -> Event {
        Event::SpanExit {
            time,
            node,
            layer,
            name: "x",
        }
    }

    #[test]
    fn nested_spans_attribute_self_time() {
        // mpi [0,100] wrapping adi [10,40] wrapping nic [20,25].
        let events = [
            enter(0, 0, Layer::Mpi),
            enter(10, 0, Layer::Adi),
            enter(20, 0, Layer::Nic),
            exit(25, 0, Layer::Nic),
            exit(40, 0, Layer::Adi),
            exit(100, 0, Layer::Mpi),
        ];
        let b = attribute(&events);
        assert_eq!(b.layer_ns(Layer::Nic), 5);
        assert_eq!(b.layer_ns(Layer::Adi), 25);
        assert_eq!(b.layer_ns(Layer::Mpi), 70);
        assert_eq!(b.covered_ns, 100);
        assert_eq!(b.unbalanced, 0);
    }

    #[test]
    fn nodes_do_not_interfere() {
        let events = [
            enter(0, 0, Layer::Bbp),
            enter(5, 1, Layer::Bbp),
            exit(10, 0, Layer::Bbp),
            exit(25, 1, Layer::Bbp),
        ];
        let b = attribute(&events);
        assert_eq!(b.layer_ns(Layer::Bbp), 10 + 20);
        assert_eq!(b.covered_ns, 30);
        assert_eq!(b.unbalanced, 0);
    }

    #[test]
    fn sequential_spans_sum() {
        let events = [
            enter(0, 0, Layer::Ring),
            exit(3, 0, Layer::Ring),
            enter(10, 0, Layer::Ring),
            exit(14, 0, Layer::Ring),
        ];
        let b = attribute(&events);
        assert_eq!(b.layer_ns(Layer::Ring), 7);
        // The 3..10 gap is not covered by any span.
        assert_eq!(b.covered_ns, 7);
    }

    #[test]
    fn unbalanced_spans_are_counted_not_crashing() {
        let events = [
            enter(0, 0, Layer::Mpi),
            exit(5, 0, Layer::Adi),  // exit without enter
            enter(6, 0, Layer::Nic), // never exits
        ];
        let b = attribute(&events);
        assert_eq!(b.unbalanced, 3); // bad exit + open nic + open mpi
    }

    fn life(time: Time, node: u32, id: u64, stage: Stage, arg: u64) -> Event {
        Event::Lifecycle {
            time,
            node,
            id,
            stage,
            arg,
        }
    }

    #[test]
    fn waterfalls_group_by_trace_id() {
        let a = (1u64 << 40) | 1; // minted on node 0
        let b = (2u64 << 40) | 2; // minted on node 1
        let events = [
            life(0, 0, a, Stage::SendEnter, 0),
            life(5, 0, b, Stage::SendEnter, 0),
            life(10, 0, a, Stage::RingInject, 0),
            life(20, 1, a, Stage::RecvMatch, 0),
            life(30, 1, a, Stage::Deliver, 0),
            life(40, 0, 0, Stage::RingHop, 0), // untraced: dropped
        ];
        let w = message_waterfalls(&events);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].id, a);
        assert_eq!(w[0].src, 0);
        assert_eq!(w[0].steps.len(), 4);
        assert_eq!(w[0].total_ns(), 30);
        assert_eq!(w[0].stage_time(Stage::RecvMatch), Some(20));
        assert_eq!(w[0].stage_time(Stage::Retry), None);
        assert_eq!(w[1].id, b);
        assert_eq!(w[1].src, 1);
    }

    #[test]
    fn rpc_request_reply_is_one_waterfall() {
        // The server re-publishes the request's trace id before posting
        // the reply, so both directions' checkpoints — including the new
        // rpc_dispatch/rpc_reply stages — group into a single waterfall.
        let id = (1u64 << 40) | 9;
        let events = [
            life(0, 0, id, Stage::SendEnter, 0),
            life(10, 1, id, Stage::RecvMatch, 0),
            life(20, 1, id, Stage::Deliver, 0),
            life(30, 1, id, Stage::RpcDispatch, 4), // arg = channel
            life(50, 1, id, Stage::RpcReply, 4),
            life(60, 0, id, Stage::RecvMatch, 0),
            life(70, 0, id, Stage::Deliver, 0),
        ];
        let w = message_waterfalls(&events);
        assert_eq!(w.len(), 1, "request and reply share one chain");
        assert_eq!(w[0].src, 0, "the chain originates at the client");
        assert_eq!(w[0].steps.len(), 7);
        assert_eq!(w[0].stage_time(Stage::RpcDispatch), Some(30));
        assert_eq!(w[0].stage_time(Stage::RpcReply), Some(50));
        assert_eq!(w[0].total_ns(), 70, "full request→reply service span");
    }

    #[test]
    fn rows_skip_empty_layers() {
        let events = [enter(0, 2, Layer::Channel), exit(9, 2, Layer::Channel)];
        let rows = attribute(&events).rows_us();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, Layer::Channel);
        assert!((rows[0].1 - 0.009).abs() < 1e-12);
    }
}
