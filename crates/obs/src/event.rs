//! The structured event model: layers, spans, counters, and the legacy
//! scheduler trace entries absorbed from `des::trace`.

use crate::Time;

/// Node id for events not attributable to any simulated node (scheduler
/// activity, cross-node hardware like the ring serializer).
pub const NO_NODE: u32 = u32::MAX;

/// Which layer of the stack produced an event. Order matters: it is the
/// nesting order of a deep MPI send (binding on top, wire at the bottom)
/// and the row order of attribution reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// MPI bindings (`MPI_Send`, collectives): argument checking, request
    /// bookkeeping — the top of the paper's layering stack.
    Mpi,
    /// The Abstract Device Interface: posted/unexpected queues, matching.
    Adi,
    /// The MPICH channel interface: 64-byte header packets.
    Channel,
    /// The device binding under the channel interface (BBP / TCP / hybrid
    /// routing).
    Device,
    /// The BillBoard Protocol: descriptor slots, flag toggles, buffer GC.
    Bbp,
    /// NIC access: PIO word/block programmed I/O and DMA.
    Nic,
    /// The SCRAMNet register-insertion ring itself: packet hops.
    Ring,
    /// The simulation kernel (scheduler dispatch).
    Sched,
    /// The request/reply serving layer above BBP (`crates/rpc`): message
    /// queues, buffer ownership transfer, credit-based backpressure.
    Rpc,
}

impl Layer {
    /// All layers. `ALL` is append-only: the index of each layer is the
    /// Chrome-trace tid baked into golden trace files, so `Rpc` sits at
    /// the end even though its logical stack position is above `Mpi`.
    pub const ALL: [Layer; 9] = [
        Layer::Mpi,
        Layer::Adi,
        Layer::Channel,
        Layer::Device,
        Layer::Bbp,
        Layer::Nic,
        Layer::Ring,
        Layer::Sched,
        Layer::Rpc,
    ];

    /// Number of layers.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable lowercase name (used as the Chrome trace category and the
    /// JSON report key).
    pub fn name(self) -> &'static str {
        match self {
            Layer::Mpi => "mpi",
            Layer::Adi => "adi",
            Layer::Channel => "channel",
            Layer::Device => "device",
            Layer::Bbp => "bbp",
            Layer::Nic => "nic",
            Layer::Ring => "ring",
            Layer::Sched => "sched",
            Layer::Rpc => "rpc",
        }
    }

    /// Index into [`Layer::ALL`]-shaped arrays.
    pub fn index(self) -> usize {
        match self {
            Layer::Mpi => 0,
            Layer::Adi => 1,
            Layer::Channel => 2,
            Layer::Device => 3,
            Layer::Bbp => 4,
            Layer::Nic => 5,
            Layer::Ring => 6,
            Layer::Sched => 7,
            Layer::Rpc => 8,
        }
    }
}

/// One recorded observation. Span names are `&'static str` by design:
/// recording must never allocate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A layer began work on a node at `time`.
    SpanEnter {
        /// Virtual time, ns.
        time: Time,
        /// Node (rank) the work runs on, or [`NO_NODE`].
        node: u32,
        /// Stack layer doing the work.
        layer: Layer,
        /// What the work is (e.g. `"send"`, `"pio_write"`).
        name: &'static str,
    },
    /// The matching end of a [`Event::SpanEnter`].
    SpanExit {
        /// Virtual time, ns.
        time: Time,
        /// Node (rank) the work ran on, or [`NO_NODE`].
        node: u32,
        /// Stack layer that did the work.
        layer: Layer,
        /// Span name (must match the enter).
        name: &'static str,
    },
    /// A monotonic counter increment (ring packets, PIO words, GC scans,
    /// unexpected-queue hits, …).
    Count {
        /// Virtual time, ns.
        time: Time,
        /// Node the count belongs to, or [`NO_NODE`].
        node: u32,
        /// Counter name (e.g. `"ring.packets"`).
        name: &'static str,
        /// Increment.
        delta: u64,
    },
    /// A message-lifecycle checkpoint recorded against a trace id (see
    /// [`crate::lifecycle::Stage`]). The Chrome exporter renders these
    /// as flow events (`s`/`t`/`f`) so one message's journey draws as a
    /// connected arrow chain across nodes.
    Lifecycle {
        /// Virtual time, ns.
        time: Time,
        /// Node (rank) the checkpoint happened on, or [`NO_NODE`].
        node: u32,
        /// The message's trace id (0 = untraced).
        id: u64,
        /// Which checkpoint.
        stage: crate::lifecycle::Stage,
        /// Stage argument (hop node, target rank, attempt, …).
        arg: u64,
    },
    /// A legacy scheduler trace entry (see [`TraceEntry`]).
    Sched(TraceEntry),
}

impl Event {
    /// Virtual time of the event.
    pub fn time(&self) -> Time {
        match self {
            Event::SpanEnter { time, .. }
            | Event::SpanExit { time, .. }
            | Event::Count { time, .. }
            | Event::Lifecycle { time, .. } => *time,
            Event::Sched(e) => e.time,
        }
    }
}

/// What kind of scheduling decision a trace entry records.
///
/// Absorbed from the old `des::trace` module; `des` re-exports this type
/// so existing imports keep compiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A process yielded (advance / block / finish).
    Yield,
    /// A process was resumed.
    Resume,
    /// A pure event fired.
    Event,
    /// A component-defined marker (see `des::SimHandle::trace_mark`).
    Mark,
}

/// One recorded scheduling decision (legacy determinism-trace entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time of the decision.
    pub time: Time,
    /// Category.
    pub kind: TraceKind,
    /// Free-form detail (process name, reason, marker label).
    pub detail: String,
}

impl std::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>12}] {:?} {}", self.time, self.kind, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_indices_match_all_order() {
        for (i, l) in Layer::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
    }

    #[test]
    fn layer_names_are_unique() {
        let mut names: Vec<&str> = Layer::ALL.iter().map(|l| l.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Layer::COUNT);
    }

    #[test]
    fn trace_entry_display_is_stable() {
        let e = TraceEntry {
            time: 42,
            kind: TraceKind::Resume,
            detail: "p0".to_string(),
        };
        assert_eq!(e.to_string(), "[          42] Resume p0");
    }

    #[test]
    fn event_time_covers_all_variants() {
        let t = TraceEntry {
            time: 7,
            kind: TraceKind::Event,
            detail: String::new(),
        };
        for e in [
            Event::SpanEnter {
                time: 5,
                node: 0,
                layer: Layer::Bbp,
                name: "send",
            },
            Event::SpanExit {
                time: 5,
                node: 0,
                layer: Layer::Bbp,
                name: "send",
            },
            Event::Count {
                time: 5,
                node: 0,
                name: "x",
                delta: 1,
            },
            Event::Lifecycle {
                time: 5,
                node: 0,
                id: 1,
                stage: crate::lifecycle::Stage::SendEnter,
                arg: 0,
            },
        ] {
            assert_eq!(e.time(), 5);
        }
        assert_eq!(Event::Sched(t).time(), 7);
    }
}
