//! Chrome `trace_event` export: the recorded event log rendered as JSON
//! that Perfetto (<https://ui.perfetto.dev>) and `about://tracing` load
//! directly. Nodes become processes, layers become threads, counters
//! become counter tracks.

use std::fmt::Write as _;

use crate::event::{Event, Layer, TraceKind, NO_NODE};
use crate::json::{write_f64, write_string};
use crate::timeseries::SeriesSnapshot;
use crate::Time;

/// `pid` used for events not tied to a node (`NO_NODE`): Chrome accepts
/// any integer, and `-1` sorts the hardware track away from rank 0..N.
const HW_PID: i64 = -1;

fn pid_of(node: u32) -> i64 {
    if node == NO_NODE {
        HW_PID
    } else {
        node as i64
    }
}

/// Virtual-time ns → trace `ts` in µs, printed with fixed precision so
/// the output is byte-stable (golden-file tested).
fn write_ts(out: &mut String, t: Time) {
    let _ = write!(out, "{}.{:03}", t / 1_000, t % 1_000);
}

/// Render `events` as a complete Chrome `trace_event` JSON document.
///
/// Span enters/exits map to `B`/`E` phases on `(pid = node, tid = layer)`
/// tracks, counters to `C` phase counter tracks, and legacy `Mark`
/// scheduler entries to global instant events. Other legacy scheduler
/// entries (yield/resume/event) are omitted — they narrate the scheduler,
/// not the workload, and triple the file size.
pub fn chrome_trace_json(events: &[Event]) -> String {
    chrome_trace_json_with_telemetry(events, &[])
}

/// [`chrome_trace_json`] plus gauge time series rendered as `C`
/// (counter) events on per-node tracks: one counter event per retained
/// bucket, carrying the bucket's last value at its end time. With an
/// empty `series` slice the output is byte-identical to
/// [`chrome_trace_json`] — telemetry left disabled never perturbs a
/// golden trace.
pub fn chrome_trace_json_with_telemetry(events: &[Event], series: &[SeriesSnapshot]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + series.len() * 2048 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;

    // Metadata first: name every (pid, tid) track we are about to use,
    // sorted for deterministic output.
    let mut tracks: Vec<(i64, usize)> = Vec::new();
    for e in events {
        let key = match e {
            Event::SpanEnter { node, layer, .. } | Event::SpanExit { node, layer, .. } => {
                (pid_of(*node), layer.index())
            }
            Event::Lifecycle { node, stage, .. } => (pid_of(*node), stage.layer().index()),
            _ => continue,
        };
        if !tracks.contains(&key) {
            tracks.push(key);
        }
    }
    tracks.sort_unstable();
    let mut pids: Vec<i64> = tracks.iter().map(|(p, _)| *p).collect();
    pids.extend(series.iter().map(|s| pid_of(s.node)));
    pids.sort_unstable();
    pids.dedup();
    for pid in &pids {
        push_sep(&mut out, &mut first);
        let name = if *pid == HW_PID {
            "hardware".to_string()
        } else {
            format!("node{pid}")
        };
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":"
        );
        write_string(&mut out, &name);
        out.push_str("}}");
    }
    for (pid, tid) in &tracks {
        push_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":"
        );
        write_string(&mut out, Layer::ALL[*tid].name());
        out.push_str("}}");
    }

    // Running totals so counter tracks plot cumulative values.
    let mut totals: Vec<(&'static str, u32, u64)> = Vec::new();

    for e in events {
        match e {
            Event::SpanEnter {
                time,
                node,
                layer,
                name,
            }
            | Event::SpanExit {
                time,
                node,
                layer,
                name,
            } => {
                let ph = if matches!(e, Event::SpanEnter { .. }) {
                    'B'
                } else {
                    'E'
                };
                push_sep(&mut out, &mut first);
                out.push_str("{\"name\":");
                write_string(&mut out, name);
                out.push_str(",\"cat\":");
                write_string(&mut out, layer.name());
                let _ = write!(out, ",\"ph\":\"{ph}\",\"ts\":");
                write_ts(&mut out, *time);
                let _ = write!(
                    out,
                    ",\"pid\":{},\"tid\":{}}}",
                    pid_of(*node),
                    layer.index()
                );
            }
            Event::Count {
                time,
                node,
                name,
                delta,
            } => {
                let total = match totals.iter_mut().find(|(n, nd, _)| n == name && nd == node) {
                    Some(slot) => {
                        slot.2 += delta;
                        slot.2
                    }
                    None => {
                        totals.push((name, *node, *delta));
                        *delta
                    }
                };
                push_sep(&mut out, &mut first);
                out.push_str("{\"name\":");
                write_string(&mut out, name);
                out.push_str(",\"ph\":\"C\",\"ts\":");
                write_ts(&mut out, *time);
                let _ = write!(
                    out,
                    ",\"pid\":{},\"args\":{{\"value\":{total}}}}}",
                    pid_of(*node)
                );
            }
            Event::Lifecycle {
                time,
                node,
                id,
                stage,
                arg,
            } => {
                // One flow chain per message: the send entry starts it
                // (`s`), delivery finishes it (`f`, binding to the
                // enclosing slice), every checkpoint between is a step
                // (`t`). Untraced events (id 0) have no chain to join.
                if *id == 0 {
                    continue;
                }
                let ph = match stage {
                    crate::lifecycle::Stage::SendEnter => "s",
                    crate::lifecycle::Stage::Deliver => "f",
                    _ => "t",
                };
                push_sep(&mut out, &mut first);
                out.push_str("{\"name\":\"message\",\"cat\":\"lifecycle\",\"ph\":\"");
                out.push_str(ph);
                out.push('"');
                if ph == "f" {
                    out.push_str(",\"bp\":\"e\"");
                }
                let _ = write!(out, ",\"id\":{id},\"ts\":");
                write_ts(&mut out, *time);
                let _ = write!(
                    out,
                    ",\"pid\":{},\"tid\":{},\"args\":{{\"stage\":\"{}\",\"arg\":{arg}}}}}",
                    pid_of(*node),
                    stage.layer().index(),
                    stage.name()
                );
            }
            Event::Sched(entry) if entry.kind == TraceKind::Mark => {
                push_sep(&mut out, &mut first);
                out.push_str("{\"name\":");
                write_string(&mut out, &entry.detail);
                out.push_str(",\"ph\":\"i\",\"s\":\"g\",\"ts\":");
                write_ts(&mut out, entry.time);
                let _ = write!(out, ",\"pid\":{HW_PID},\"tid\":{}}}", Layer::Sched.index());
            }
            Event::Sched(_) => {}
        }
    }

    // Gauge series: one `C` event per retained bucket, plotted at the
    // bucket's end time with its last value. Counter tracks are keyed
    // by (pid, name), so each gauge draws per node.
    for s in series {
        for b in &s.buckets {
            push_sep(&mut out, &mut first);
            out.push_str("{\"name\":");
            write_string(&mut out, s.name);
            out.push_str(",\"ph\":\"C\",\"ts\":");
            write_ts(&mut out, b.t1);
            let _ = write!(out, ",\"pid\":{},\"args\":{{\"value\":", pid_of(s.node));
            write_f64(&mut out, b.last);
            out.push_str("}}");
        }
    }

    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEntry;
    use crate::json;

    #[test]
    fn export_is_valid_json_with_expected_phases() {
        let events = [
            Event::SpanEnter {
                time: 1_500,
                node: 0,
                layer: Layer::Mpi,
                name: "send",
            },
            Event::Count {
                time: 2_000,
                node: 0,
                name: "nic.pio_words",
                delta: 16,
            },
            Event::Count {
                time: 2_500,
                node: 0,
                name: "nic.pio_words",
                delta: 4,
            },
            Event::SpanExit {
                time: 44_000,
                node: 0,
                layer: Layer::Mpi,
                name: "send",
            },
            Event::Sched(TraceEntry {
                time: 50_000,
                kind: TraceKind::Mark,
                detail: "done".to_string(),
            }),
        ];
        let text = chrome_trace_json(&events);
        let doc = json::parse(&text).expect("exporter must emit valid JSON");
        let items = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let phases: Vec<&str> = items
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        // 1 process_name + 1 thread_name + B + 2×C + E + instant.
        assert_eq!(phases, vec!["M", "M", "B", "C", "C", "E", "i"]);
        // Counter is cumulative.
        assert_eq!(
            items[4].get("args").unwrap().get("value").unwrap().as_f64(),
            Some(20.0)
        );
        // ts is µs with fixed 3-decimal rendering.
        assert_eq!(items[2].get("ts").unwrap().as_f64(), Some(1.5));
    }

    #[test]
    fn lifecycle_events_become_flow_phases() {
        use crate::lifecycle::Stage;
        let id = (1u64 << 40) | 3;
        let life = |time, node, stage, arg| Event::Lifecycle {
            time,
            node,
            id,
            stage,
            arg,
        };
        let events = [
            life(1_000, 0, Stage::SendEnter, 0),
            life(2_000, 0, Stage::RingInject, 0),
            life(3_000, 1, Stage::RingHop, 1),
            life(4_000, 1, Stage::RecvMatch, 0),
            life(5_000, 1, Stage::Deliver, 0),
            Event::Lifecycle {
                time: 6_000,
                node: 0,
                id: 0,
                stage: Stage::RingHop,
                arg: 0,
            },
        ];
        let text = chrome_trace_json(&events);
        let doc = json::parse(&text).expect("flow export must be valid JSON");
        let items = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let phases: Vec<&str> = items
            .iter()
            .filter(|e| e.get("cat").and_then(json::Json::as_str) == Some("lifecycle"))
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        // Untraced id-0 event omitted; s starts, t steps, f finishes.
        assert_eq!(phases, vec!["s", "t", "t", "t", "f"]);
        let fin = items
            .iter()
            .find(|e| e.get("ph").and_then(json::Json::as_str) == Some("f"))
            .unwrap();
        assert_eq!(fin.get("bp").unwrap().as_str(), Some("e"));
        assert_eq!(fin.get("id").unwrap().as_f64(), Some(id as f64));
        assert_eq!(
            fin.get("args").unwrap().get("stage").unwrap().as_str(),
            Some("deliver")
        );
        // Lifecycle-only streams still name their tracks.
        assert!(items
            .iter()
            .any(|e| e.get("ph").and_then(json::Json::as_str) == Some("M")));
    }

    #[test]
    fn rpc_request_reply_renders_as_one_flow_chain() {
        use crate::lifecycle::Stage;
        // The server publishes the request's trace id before posting the
        // reply, so every checkpoint of both directions carries one id —
        // the whole request/reply exchange draws as a single causal
        // chain in the Chrome viewer.
        let id = (1u64 << 40) | 7;
        let life = |time, node, stage| Event::Lifecycle {
            time,
            node,
            id,
            stage,
            arg: 0,
        };
        let events = [
            life(1_000, 0, Stage::SendEnter),       // client posts request
            life(2_000, 1, Stage::RecvMatch),       // server's poll matches
            life(3_000, 1, Stage::Deliver),         // request delivered
            life(4_000, 1, Stage::RpcDispatch),     // handler gets the buffer
            life(5_000, 1, Stage::RpcReply),        // in-place reply posted
            life(6_000, 1, Stage::DescriptorWrite), // reply's BBP post
            life(7_000, 0, Stage::RecvMatch),       // client's poll matches
            life(8_000, 0, Stage::Deliver),         // reply delivered
        ];
        let text = chrome_trace_json(&events);
        let doc = json::parse(&text).expect("flow export must be valid JSON");
        let items = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let flows: Vec<(&str, &str)> = items
            .iter()
            .filter(|e| e.get("cat").and_then(json::Json::as_str) == Some("lifecycle"))
            .map(|e| {
                (
                    e.get("ph").unwrap().as_str().unwrap(),
                    e.get("args")
                        .unwrap()
                        .get("stage")
                        .unwrap()
                        .as_str()
                        .unwrap(),
                )
            })
            .collect();
        assert_eq!(
            flows,
            vec![
                ("s", "send_enter"),
                ("t", "recv_match"),
                ("f", "deliver"),
                ("t", "rpc_dispatch"),
                ("t", "rpc_reply"),
                ("t", "descriptor_write"),
                ("t", "recv_match"),
                ("f", "deliver"),
            ]
        );
        // Every step binds to the same flow id.
        for e in items
            .iter()
            .filter(|e| e.get("cat").and_then(json::Json::as_str) == Some("lifecycle"))
        {
            assert_eq!(e.get("id").unwrap().as_f64(), Some(id as f64));
        }
        // The rpc stages land on the rpc track (tid = Layer::Rpc index).
        let dispatch = items
            .iter()
            .find(|e| {
                e.get("args")
                    .and_then(|a| a.get("stage"))
                    .and_then(json::Json::as_str)
                    == Some("rpc_dispatch")
            })
            .unwrap();
        assert_eq!(
            dispatch.get("tid").unwrap().as_f64(),
            Some(Layer::Rpc.index() as f64)
        );
    }

    #[test]
    fn telemetry_series_render_as_counter_tracks() {
        use crate::timeseries::Telemetry;
        let t = Telemetry::new();
        t.enable();
        t.observe(1_000, 2, "rpc.buffers_in_use", 3.0);
        t.observe(5_000, 2, "rpc.buffers_in_use", 7.0);
        let series = t.snapshot();
        let events = [Event::SpanEnter {
            time: 0,
            node: 0,
            layer: Layer::Mpi,
            name: "send",
        }];
        let text = chrome_trace_json_with_telemetry(&events, &series);
        let doc = json::parse(&text).expect("telemetry export must be valid JSON");
        let items = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let counters: Vec<&json::Json> = items
            .iter()
            .filter(|e| e.get("ph").and_then(json::Json::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 2, "one C event per bucket");
        assert_eq!(counters[0].get("pid").unwrap().as_f64(), Some(2.0));
        assert_eq!(
            counters[1]
                .get("args")
                .unwrap()
                .get("value")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );
        // The telemetry-only node still gets a named process track.
        assert!(items.iter().any(|e| {
            e.get("ph").and_then(json::Json::as_str) == Some("M")
                && e.get("pid").and_then(json::Json::as_f64) == Some(2.0)
        }));
        // An empty series slice is byte-identical to the plain exporter.
        assert_eq!(
            chrome_trace_json_with_telemetry(&events, &[]),
            chrome_trace_json(&events)
        );
    }

    #[test]
    fn scheduler_noise_is_omitted() {
        let events = [Event::Sched(TraceEntry {
            time: 10,
            kind: TraceKind::Resume,
            detail: "p0".to_string(),
        })];
        let text = chrome_trace_json(&events);
        let doc = json::parse(&text).unwrap();
        assert!(doc.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn hardware_events_use_the_hw_pid() {
        let events = [
            Event::SpanEnter {
                time: 0,
                node: NO_NODE,
                layer: Layer::Ring,
                name: "hop",
            },
            Event::SpanExit {
                time: 250,
                node: NO_NODE,
                layer: Layer::Ring,
                name: "hop",
            },
        ];
        let text = chrome_trace_json(&events);
        let doc = json::parse(&text).unwrap();
        let items = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let b = items
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("B"))
            .unwrap();
        assert_eq!(b.get("pid").unwrap().as_f64(), Some(-1.0));
    }
}
