//! The postmortem flight recorder: a bounded, always-on ring buffer of
//! recent message-lifecycle events.
//!
//! Full tracing ([`crate::Recorder::enable`]) is off by default and off
//! in CI's gated campaigns, so when a red cell appears all a test can
//! normally show is its assert message. The flight recorder closes that
//! gap: every lifecycle checkpoint is *also* written into a fixed ring
//! of preallocated atomic slots — one relaxed `fetch_add` to claim a
//! slot plus relaxed stores of the event words, no locks, no allocation
//! — so the last few hundred protocol steps per node are always
//! available. When a typed `BbpError`/`MpiError` surfaces, a scripted
//! chaos kill fires, or a gated test panics, the ring is dumped as JSON
//! (under `$FLIGHT_DUMP_DIR`, default `target/flight/`) and CI uploads
//! it as an artifact.
//!
//! Slots are plain relaxed words, not a seqlock: a torn event (possible
//! only under concurrent writers, which the simulator's one-entity-at-
//! a-time execution never produces) would corrupt one diagnostic row,
//! never memory safety — an explicit trade for a recording cost small
//! enough to leave on everywhere.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::write_string;
use crate::lifecycle::Stage;
use crate::Time;

/// Ring banks. Nodes hash into banks (`node % BANKS`) so one chatty
/// node cannot evict every other node's recent history.
pub const BANKS: usize = 8;

/// Events retained per bank.
pub const BANK_SLOTS: usize = 128;

/// Words per slot: time, packed node+stage, trace id, argument.
const SLOT_WORDS: usize = 4;

/// One decoded flight-recorder entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Virtual time, ns.
    pub time: Time,
    /// Node (rank) the event happened on, or [`crate::NO_NODE`].
    pub node: u32,
    /// Trace id the event belongs to (0 = untraced).
    pub id: u64,
    /// Lifecycle checkpoint.
    pub stage: Stage,
    /// Stage argument (hop node, target rank, attempt, …).
    pub arg: u64,
}

struct Bank {
    /// Monotonic slot-claim counter; `cursor % BANK_SLOTS` is the next
    /// slot, `min(cursor, BANK_SLOTS)` the number of valid slots.
    cursor: AtomicU64,
    words: [AtomicU64; BANK_SLOTS * SLOT_WORDS],
}

impl Bank {
    fn new() -> Self {
        Bank {
            cursor: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The per-simulation flight recorder. Owned by [`crate::Recorder`];
/// use [`crate::Recorder::flight`] to reach it.
pub struct FlightRecorder {
    banks: [Bank; BANKS],
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        FlightRecorder {
            banks: std::array::from_fn(|_| Bank::new()),
        }
    }

    /// Record one lifecycle event. Relaxed-atomic only: one `fetch_add`
    /// to claim the slot, then plain relaxed stores — no locks, no
    /// allocation, safe from any instrumentation site.
    #[inline]
    pub fn push(&self, time: Time, node: u32, id: u64, stage: Stage, arg: u64) {
        let bank = &self.banks[(node as usize) % BANKS];
        let slot = (bank.cursor.fetch_add(1, Ordering::Relaxed) as usize % BANK_SLOTS) * SLOT_WORDS;
        bank.words[slot].store(time, Ordering::Relaxed);
        bank.words[slot + 1].store(((node as u64) << 8) | stage as u64, Ordering::Relaxed);
        bank.words[slot + 2].store(id, Ordering::Relaxed);
        bank.words[slot + 3].store(arg, Ordering::Relaxed);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.banks
            .iter()
            .map(|b| b.cursor.load(Ordering::Relaxed))
            .sum()
    }

    /// Decode the surviving events, oldest first (globally time-sorted;
    /// bank order breaks ties, keeping the output deterministic).
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let mut out = Vec::new();
        for bank in &self.banks {
            let n = (bank.cursor.load(Ordering::Relaxed) as usize).min(BANK_SLOTS);
            for i in 0..n {
                let slot = i * SLOT_WORDS;
                let meta = bank.words[slot + 1].load(Ordering::Relaxed);
                out.push(FlightEvent {
                    time: bank.words[slot].load(Ordering::Relaxed),
                    node: (meta >> 8) as u32,
                    stage: Stage::from_u8((meta & 0xFF) as u8),
                    id: bank.words[slot + 2].load(Ordering::Relaxed),
                    arg: bank.words[slot + 3].load(Ordering::Relaxed),
                });
            }
        }
        out.sort_by_key(|e| e.time);
        out
    }

    /// Render the surviving events as a JSON postmortem document.
    pub fn dump_json(&self, label: &str) -> String {
        let events = self.snapshot();
        let mut o = String::with_capacity(events.len() * 80 + 128);
        o.push_str("{\"flight_recorder\": ");
        write_string(&mut o, label);
        let _ = std::fmt::Write::write_fmt(
            &mut o,
            format_args!(", \"recorded\": {}, \"events\": [", self.recorded()),
        );
        for (i, e) in events.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            // `NO_NODE` prints as -1, matching the Chrome exporter's
            // hardware pid.
            let node = if e.node == crate::NO_NODE {
                -1
            } else {
                e.node as i64
            };
            let _ = std::fmt::Write::write_fmt(
                &mut o,
                format_args!(
                    "  {{\"t_ns\": {}, \"node\": {}, \"stage\": \"{}\", \"id\": {}, \"arg\": {}}}",
                    e.time,
                    node,
                    e.stage.name(),
                    e.id,
                    e.arg
                ),
            );
        }
        o.push_str("\n]}\n");
        o
    }

    /// Write the postmortem JSON to `$FLIGHT_DUMP_DIR` (default
    /// `target/flight/`), named after a sanitized `label`. Best-effort:
    /// a dump is diagnostics, so I/O failures are swallowed and `None`
    /// is returned. Returns the written path on success.
    pub fn dump_to_dir(&self, label: &str) -> Option<std::path::PathBuf> {
        let dir = std::env::var("FLIGHT_DUMP_DIR").unwrap_or_else(|_| "target/flight".to_string());
        let slug: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = std::path::Path::new(&dir).join(format!("flight_{slug}.json"));
        std::fs::create_dir_all(&dir).ok()?;
        std::fs::write(&path, self.dump_json(label)).ok()?;
        Some(path)
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("recorded", &self.recorded())
            .finish()
    }
}

/// Dump-on-panic guard for gated tests: holds the simulation's
/// [`crate::Recorder`] and, if the surrounding test panics, writes the
/// flight ring to disk on the way down so a red CI cell ships its
/// postmortem alongside the assert message.
pub struct FlightGuard {
    label: String,
    recorder: std::sync::Arc<crate::Recorder>,
}

impl FlightGuard {
    /// Arm a guard for the test (or campaign cell) named `label`.
    pub fn new(label: impl Into<String>, recorder: std::sync::Arc<crate::Recorder>) -> Self {
        FlightGuard {
            label: label.into(),
            recorder,
        }
    }

    /// Dump unconditionally (used by failure paths that do not unwind).
    pub fn dump_now(&self) -> Option<std::path::PathBuf> {
        self.recorder.flight().dump_to_dir(&self.label)
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            if let Some(path) = self.dump_now() {
                eprintln!("flight recorder dumped to {}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn push_and_snapshot_round_trip() {
        let fr = FlightRecorder::new();
        fr.push(100, 0, 7, Stage::SendEnter, 0);
        fr.push(250, 1, 7, Stage::RecvMatch, 3);
        let evs = fr.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].time, 100);
        assert_eq!(evs[0].stage, Stage::SendEnter);
        assert_eq!(evs[1].node, 1);
        assert_eq!(evs[1].id, 7);
        assert_eq!(evs[1].arg, 3);
    }

    #[test]
    fn ring_overwrites_oldest_per_bank() {
        let fr = FlightRecorder::new();
        for i in 0..(BANK_SLOTS as u64 + 10) {
            fr.push(i, 0, i, Stage::RingHop, 0);
        }
        let evs = fr.snapshot();
        assert_eq!(evs.len(), BANK_SLOTS);
        assert_eq!(fr.recorded(), BANK_SLOTS as u64 + 10);
        // The 10 oldest events were evicted.
        assert!(evs
            .iter()
            .all(|e| e.time >= 10 || e.time < BANK_SLOTS as u64));
        assert!(evs.iter().any(|e| e.time == BANK_SLOTS as u64 + 9));
    }

    #[test]
    fn nodes_in_different_banks_do_not_evict_each_other() {
        let fr = FlightRecorder::new();
        for i in 0..(BANK_SLOTS as u64 * 3) {
            fr.push(i, 0, 0, Stage::RingHop, 0);
        }
        fr.push(9_999, 1, 42, Stage::Deliver, 0);
        let evs = fr.snapshot();
        assert!(evs.iter().any(|e| e.node == 1 && e.id == 42));
    }

    #[test]
    fn dump_is_valid_json() {
        let fr = FlightRecorder::new();
        fr.push(1_000, 2, 99, Stage::FlagSet, 1);
        let text = fr.dump_json("unit \"test\"");
        let doc = json::parse(&text).expect("flight dump must be valid JSON");
        assert_eq!(
            doc.get("flight_recorder").unwrap().as_str(),
            Some("unit \"test\"")
        );
        let evs = doc.get("events").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].get("stage").unwrap().as_str(), Some("flag_set"));
        assert_eq!(evs[0].get("id").unwrap().as_f64(), Some(99.0));
    }

    #[test]
    fn snapshot_is_time_sorted_across_banks() {
        let fr = FlightRecorder::new();
        fr.push(300, 3, 1, Stage::RingHop, 0);
        fr.push(100, 0, 1, Stage::RingInject, 0);
        fr.push(200, 5, 1, Stage::RingHop, 0);
        let times: Vec<u64> = fr.snapshot().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![100, 200, 300]);
    }
}
