#![warn(missing_docs)]

//! # `obs` — cross-layer observability
//!
//! The measurement substrate for the whole SCRAMNet reproduction. Every
//! layer of the stack — the `des` scheduler, the SCRAMNet ring and NIC,
//! the BillBoard Protocol, and the MPI stack (binding → ADI → channel
//! interface → device) — records structured [`Event`]s into a shared
//! [`Recorder`]:
//!
//! - **Spans** (`SpanEnter`/`SpanExit`) carry virtual-time stamps, a node
//!   id, and a [`Layer`] label, and nest per node. [`attribute`] folds a
//!   finished event stream into per-layer *self time*, which is how the
//!   paper's ≈37.5 µs MPI-over-BBP layering constant becomes an artifact
//!   you can regenerate (`bench-report` in `crates/bench`).
//! - **Counters** track discrete hardware work: ring packets, PIO words,
//!   buffer-GC scans, unexpected-queue hits.
//! - **Scheduler events** ([`TraceEntry`], absorbed from the old
//!   `des::trace` module) preserve the byte-identical determinism traces
//!   the integration tests compare.
//!
//! - **Lifecycle checkpoints** ([`lifecycle::Stage`]) trace a single
//!   message's journey — send entry, descriptor write, ring injection,
//!   per-hop transit, flag toggle, receive match, delivery, retry repair
//!   — against a compact trace id minted at the send entry point.
//!   [`message_waterfalls`] reconstructs the per-message latency
//!   waterfall; the Chrome exporter renders it as `s`/`t`/`f` flow
//!   events.
//!
//! - **Gauges** ([`timeseries::Telemetry`]) sample load-bearing state —
//!   queue residencies, credit balances, shard clock skew, membership
//!   grades — into fixed-capacity downsampling time series on their own
//!   enable gate, and the [`health::HealthSpec`] engine turns campaign
//!   invariants over those series into declarative rules.
//!
//! The recorder is **zero-overhead when disabled**: every recording call
//! is one relaxed atomic load, no locks and no allocations (verified by
//! `tests/obs_zero_cost.rs`). Two always-on facilities are budgeted just
//! as tightly: [`hist::LogHistogram`] records a latency sample with one
//! relaxed `fetch_add`, and the [`flight::FlightRecorder`] keeps a
//! bounded ring of recent lifecycle events (relaxed stores into
//! preallocated slots) that is dumped as a JSON postmortem when a typed
//! error surfaces, a chaos kill fires, or a gated test fails.
//!
//! Exporters: [`chrome_trace_json`] writes Chrome `trace_event` JSON
//! loadable in Perfetto / `about://tracing`; [`report::BenchReport`]
//! writes the versioned machine-readable bench summary. See
//! `docs/OBSERVABILITY.md` for the span taxonomy and schemas.
//!
//! This crate sits at the bottom of the dependency stack (it depends on
//! nothing, `des` depends on it), so it defines its own [`Time`] alias —
//! the same integer nanoseconds as `des::Time`.

mod attr;
mod chrome;
mod event;
mod recorder;

pub mod flight;
pub mod health;
pub mod hist;
pub mod json;
pub mod lifecycle;
pub mod report;
pub mod timeseries;

pub use attr::{attribute, message_waterfalls, LayerBreakdown, MessageWaterfall, WaterfallStep};
pub use chrome::{chrome_trace_json, chrome_trace_json_with_telemetry};
pub use event::{Event, Layer, TraceEntry, TraceKind, NO_NODE};
pub use flight::{FlightGuard, FlightRecorder};
pub use health::{HealthSpec, Violation};
pub use hist::LogHistogram;
pub use lifecycle::Stage;
pub use recorder::Recorder;
pub use timeseries::{SeriesSnapshot, Telemetry};

/// Virtual time in integer nanoseconds (identical to `des::Time`).
pub type Time = u64;
