#![warn(missing_docs)]

//! # `obs` — cross-layer observability
//!
//! The measurement substrate for the whole SCRAMNet reproduction. Every
//! layer of the stack — the `des` scheduler, the SCRAMNet ring and NIC,
//! the BillBoard Protocol, and the MPI stack (binding → ADI → channel
//! interface → device) — records structured [`Event`]s into a shared
//! [`Recorder`]:
//!
//! - **Spans** (`SpanEnter`/`SpanExit`) carry virtual-time stamps, a node
//!   id, and a [`Layer`] label, and nest per node. [`attribute`] folds a
//!   finished event stream into per-layer *self time*, which is how the
//!   paper's ≈37.5 µs MPI-over-BBP layering constant becomes an artifact
//!   you can regenerate (`bench-report` in `crates/bench`).
//! - **Counters** track discrete hardware work: ring packets, PIO words,
//!   buffer-GC scans, unexpected-queue hits.
//! - **Scheduler events** ([`TraceEntry`], absorbed from the old
//!   `des::trace` module) preserve the byte-identical determinism traces
//!   the integration tests compare.
//!
//! The recorder is **zero-overhead when disabled**: every recording call
//! is one relaxed atomic load, no locks and no allocations (verified by
//! `tests/obs_zero_cost.rs`).
//!
//! Exporters: [`chrome_trace_json`] writes Chrome `trace_event` JSON
//! loadable in Perfetto / `about://tracing`; [`report::BenchReport`]
//! writes the versioned machine-readable bench summary. See
//! `docs/OBSERVABILITY.md` for the span taxonomy and schemas.
//!
//! This crate sits at the bottom of the dependency stack (it depends on
//! nothing, `des` depends on it), so it defines its own [`Time`] alias —
//! the same integer nanoseconds as `des::Time`.

mod attr;
mod chrome;
mod event;
mod recorder;

pub mod json;
pub mod report;

pub use attr::{attribute, LayerBreakdown};
pub use chrome::chrome_trace_json;
pub use event::{Event, Layer, TraceEntry, TraceKind, NO_NODE};
pub use recorder::Recorder;

/// Virtual time in integer nanoseconds (identical to `des::Time`).
pub type Time = u64;
