//! The message-lifecycle taxonomy: the named checkpoints a single
//! message passes on its way from an MPI (or bare-BBP) send call to
//! delivery at the receiver, recorded against a compact trace id so the
//! whole journey — PIO posting, ring transit hop by hop, flag-word
//! toggle, receive match, retry repair — can be reconstructed as a
//! per-message waterfall.
//!
//! Trace ids are minted by [`crate::Recorder::mint_trace_id`] at the
//! send entry point and carried *alongside* the protocol (in the
//! recorder's per-node current-trace slots), never inside it: no shared
//! word, descriptor field, or packet byte changes, so golden
//! determinism traces and the calibrated latencies are untouched.

use crate::event::Layer;

/// A checkpoint in one message's life. The discriminants are stable
/// (they are packed into flight-recorder words) and the order is the
/// nominal happens-before order on a clean send.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Stage {
    /// The application entered the send path (MPI binding or bare BBP).
    SendEnter = 0,
    /// The BBP descriptor `[off, len, seq]` was written to the billboard.
    DescriptorWrite = 1,
    /// The message's first word was injected onto the ring (end of the
    /// sender's PIO phase).
    RingInject = 2,
    /// The packet passed through one ring node (arg = node id).
    RingHop = 3,
    /// The sender toggled the receiver's MESSAGE flag word (arg =
    /// target rank).
    FlagSet = 4,
    /// The receiver's poll matched the flag toggle and read the
    /// descriptor.
    RecvMatch = 5,
    /// The ADI parked the message in the unexpected queue (no posted
    /// receive matched).
    UnexpectedPark = 6,
    /// A late-posted receive drained the message from the unexpected
    /// queue (arg = residency time in ns when known).
    UnexpectedHit = 7,
    /// The payload was handed to the application.
    Deliver = 8,
    /// The sender retransmitted the message (arg = attempt number).
    Retry = 9,
    /// The receiver NACKed a corrupt transfer, requesting repair.
    NackRepair = 10,
    /// A typed error surfaced for this message (arg = peer rank).
    Error = 11,
    /// The RPC server popped the request off its message queue and
    /// handed the buffer to the handler (arg = channel id).
    RpcDispatch = 12,
    /// The RPC server posted the in-place reply back toward the client
    /// (arg = channel id).
    RpcReply = 13,
}

impl Stage {
    /// Every stage, in nominal lifecycle order. Append-only: the
    /// discriminants are packed into flight-recorder words.
    pub const ALL: [Stage; 14] = [
        Stage::SendEnter,
        Stage::DescriptorWrite,
        Stage::RingInject,
        Stage::RingHop,
        Stage::FlagSet,
        Stage::RecvMatch,
        Stage::UnexpectedPark,
        Stage::UnexpectedHit,
        Stage::Deliver,
        Stage::Retry,
        Stage::NackRepair,
        Stage::Error,
        Stage::RpcDispatch,
        Stage::RpcReply,
    ];

    /// Stable lowercase name (the Chrome flow-event step label and the
    /// flight-dump / waterfall key).
    pub fn name(self) -> &'static str {
        match self {
            Stage::SendEnter => "send_enter",
            Stage::DescriptorWrite => "descriptor_write",
            Stage::RingInject => "ring_inject",
            Stage::RingHop => "ring_hop",
            Stage::FlagSet => "flag_set",
            Stage::RecvMatch => "recv_match",
            Stage::UnexpectedPark => "unexpected_park",
            Stage::UnexpectedHit => "unexpected_hit",
            Stage::Deliver => "deliver",
            Stage::Retry => "retry",
            Stage::NackRepair => "nack_repair",
            Stage::Error => "error",
            Stage::RpcDispatch => "rpc_dispatch",
            Stage::RpcReply => "rpc_reply",
        }
    }

    /// The stack layer that produces this stage (the Chrome flow event's
    /// track).
    pub fn layer(self) -> Layer {
        match self {
            Stage::SendEnter => Layer::Mpi,
            Stage::UnexpectedPark | Stage::UnexpectedHit => Layer::Adi,
            Stage::DescriptorWrite
            | Stage::FlagSet
            | Stage::RecvMatch
            | Stage::Deliver
            | Stage::Retry
            | Stage::NackRepair
            | Stage::Error => Layer::Bbp,
            Stage::RingInject | Stage::RingHop => Layer::Ring,
            Stage::RpcDispatch | Stage::RpcReply => Layer::Rpc,
        }
    }

    /// Decode a packed discriminant (flight-recorder words), saturating
    /// unknown values to [`Stage::Error`].
    pub fn from_u8(v: u8) -> Stage {
        *Stage::ALL.get(v as usize).unwrap_or(&Stage::Error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discriminants_round_trip() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(*s as u8, i as u8);
            assert_eq!(Stage::from_u8(i as u8), *s);
        }
        assert_eq!(Stage::from_u8(200), Stage::Error);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
    }

    #[test]
    fn every_stage_maps_to_a_layer() {
        for s in Stage::ALL {
            // The mapping is total and lands on an instrumented layer.
            assert!(matches!(
                s.layer(),
                Layer::Mpi | Layer::Adi | Layer::Bbp | Layer::Ring | Layer::Rpc
            ));
        }
    }
}
