//! A distributed counter: the standard reflective-memory idiom for a
//! shared counter without read-modify-write hardware. Each process owns
//! an addend cell; the counter's value is the sum of all cells. Reads
//! are eventually consistent (bounded by one ring transit).

use des::ProcCtx;
use scramnet::{Nic, Word, WordAddr};

/// Layout: one addend word per process.
#[derive(Debug, Clone)]
pub struct DistributedCounter {
    base: WordAddr,
    n: usize,
}

impl DistributedCounter {
    /// Place a counter for `n` processes at word offset `base`
    /// (occupies `n` words).
    pub fn layout(base: WordAddr, n: usize) -> Self {
        assert!(n >= 1);
        DistributedCounter { base, n }
    }

    /// Words this counter occupies.
    pub fn words(&self) -> usize {
        self.n
    }

    fn cell(&self, p: usize) -> WordAddr {
        self.base + p
    }

    /// Bind to one process's NIC.
    pub fn handle(&self, nic: Nic) -> CounterHandle {
        assert!(nic.node() < self.n, "node outside the counter's slots");
        CounterHandle {
            counter: self.clone(),
            me: nic.node(),
            nic,
            local: 0,
        }
    }
}

/// One process's handle on a [`DistributedCounter`].
pub struct CounterHandle {
    counter: DistributedCounter,
    nic: Nic,
    me: usize,
    /// Our own contribution (mirrors our cell; avoids a PIO read).
    local: Word,
}

impl CounterHandle {
    /// Add `delta` to the counter (wrapping, like the hardware would).
    pub fn add(&mut self, ctx: &mut ProcCtx, delta: Word) {
        self.local = self.local.wrapping_add(delta);
        self.nic
            .write_word(ctx, self.counter.cell(self.me), self.local);
    }

    /// This process's own contribution so far.
    pub fn my_contribution(&self) -> Word {
        self.local
    }

    /// Read the counter: sum of every process's cell as replicated here.
    /// Monotone per contributor; the total is exact once the ring is
    /// quiescent.
    pub fn read(&self, ctx: &mut ProcCtx) -> Word {
        let mut sum: Word = 0;
        for p in 0..self.counter.n {
            sum = sum.wrapping_add(self.nic.read_word(ctx, self.counter.cell(p)));
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::{ms, Simulation};
    use scramnet::{CostModel, Ring};

    #[test]
    fn converges_to_the_exact_total() {
        let mut sim = Simulation::new();
        let n = 4;
        let ring = Ring::new(&sim.handle(), n, 64, CostModel::default());
        let c = DistributedCounter::layout(0, n);
        for node in 0..n {
            let mut h = c.handle(ring.nic(node));
            sim.spawn(format!("p{node}"), move |ctx| {
                for i in 0..10 {
                    h.add(ctx, (node + 1) as Word);
                    ctx.advance(500 * (i + 1));
                }
                assert_eq!(h.my_contribution(), 10 * (node + 1) as Word);
            });
        }
        // An observer reads after quiescence.
        let h0 = c.handle(ring.nic(0));
        sim.spawn("observer", move |ctx| {
            ctx.wait_until(ms(5));
            let total = h0.read(ctx);
            assert_eq!(total, 10 * (1 + 2 + 3 + 4));
        });
        assert!(sim.run().is_clean());
    }

    #[test]
    fn own_contribution_is_immediately_visible_locally() {
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), 2, 64, CostModel::default());
        let c = DistributedCounter::layout(4, 2);
        let mut h = c.handle(ring.nic(0));
        sim.spawn("p0", move |ctx| {
            h.add(ctx, 7);
            assert_eq!(h.read(ctx), 7, "read-your-own-writes");
        });
        assert!(sim.run().is_clean());
    }

    #[test]
    fn reads_are_monotone_per_contributor() {
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), 2, 64, CostModel::default());
        let c = DistributedCounter::layout(0, 2);
        let mut w = c.handle(ring.nic(0));
        let r = c.handle(ring.nic(1));
        sim.spawn("writer", move |ctx| {
            for _ in 0..20 {
                w.add(ctx, 1);
                ctx.advance(2_000);
            }
        });
        sim.spawn("reader", move |ctx| {
            let mut last = 0;
            for _ in 0..30 {
                let v = r.read(ctx);
                assert!(v >= last, "counter went backwards: {v} < {last}");
                last = v;
                ctx.advance(1_500);
            }
        });
        assert!(sim.run().is_clean());
    }

    #[test]
    fn wrapping_is_well_defined() {
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), 2, 64, CostModel::default());
        let c = DistributedCounter::layout(0, 2);
        let mut h = c.handle(ring.nic(0));
        sim.spawn("p0", move |ctx| {
            h.add(ctx, Word::MAX);
            h.add(ctx, 2);
            assert_eq!(h.my_contribution(), 1);
            assert_eq!(h.read(ctx), 1);
        });
        assert!(sim.run().is_clean());
    }
}
