//! A single-writer sequence lock: consistent multi-word snapshots over
//! replicated memory without blocking the writer.
//!
//! A multi-word record (say, a 6-DOF aircraft state) written with plain
//! stores can be read *torn*: the replication applies word by word, so a
//! reader can see half of update *n* and half of update *n+1*. The cure
//! on single-writer regular registers is Lamport's two-counter
//! construction (*Concurrent Reading While Writing*, 1977):
//!
//! - **writer**: `v1 := version+1`, data words, `v2 := version+1`;
//! - **reader**: read `v2` **first**, then the data, then `v1`; accept
//!   iff `v1 == v2`.
//!
//! The counter order is the whole trick. Any update whose data words
//! could contaminate the reader's data read must — by the per-source
//! FIFO of the replication — have landed its `v1` *before* those data
//! words; the reader reads `v1` *after* the data, so it observes the new
//! value and the mismatch with the earlier `v2` read rejects the
//! snapshot. (Reading the counters in the opposite order admits torn
//! snapshots; the regression test
//! `tests::counter_order_is_load_bearing` demonstrates the broken
//! variant failing.)

use des::{ProcCtx, Time};
use scramnet::{Nic, Word, WordAddr};

/// Layout: `v1`, `data[words]`, `v2` — all written only by `owner`.
#[derive(Debug, Clone)]
pub struct SeqLock {
    base: WordAddr,
    words: usize,
    owner: usize,
}

impl SeqLock {
    /// Place a sequence-locked record of `words` payload words at `base`
    /// (occupies `words + 2`), writable by node `owner`.
    pub fn layout(base: WordAddr, words: usize, owner: usize) -> Self {
        assert!(words >= 1, "an empty record needs no lock");
        SeqLock { base, words, owner }
    }

    /// Total words occupied (payload + two version words).
    pub fn total_words(&self) -> usize {
        self.words + 2
    }

    fn v1(&self) -> WordAddr {
        self.base
    }

    fn data(&self) -> WordAddr {
        self.base + 1
    }

    fn v2(&self) -> WordAddr {
        self.base + 1 + self.words
    }

    /// Bind to a NIC. Only the owner's handle may publish.
    pub fn handle(&self, nic: Nic) -> SeqLockHandle {
        SeqLockHandle {
            lock: self.clone(),
            nic,
            version: 0,
            backoff_ns: 400,
        }
    }
}

/// One node's view of a [`SeqLock`].
pub struct SeqLockHandle {
    lock: SeqLock,
    nic: Nic,
    /// Writer-local version mirror.
    version: Word,
    backoff_ns: Time,
}

impl SeqLockHandle {
    /// Adjust the retry pause used by [`SeqLockHandle::read`].
    pub fn set_backoff(&mut self, ns: Time) {
        self.backoff_ns = ns;
    }

    /// Publish a new value of the record. Owner only; never blocks.
    pub fn publish(&mut self, ctx: &mut ProcCtx, value: &[Word]) {
        assert_eq!(
            self.nic.node(),
            self.lock.owner,
            "seqlock written by non-owner node {}",
            self.nic.node()
        );
        assert_eq!(
            value.len(),
            self.lock.words,
            "record length is fixed at layout time"
        );
        let next = self.version.wrapping_add(1);
        self.nic.write_word(ctx, self.lock.v1(), next);
        // Word-by-word stores, as a compiler emits for a struct update —
        // each word is its own ring packet, so replicas genuinely apply
        // the record piecemeal (a single burst would replicate as one
        // atomic train and mask exactly the hazard this lock exists for).
        for (i, &w) in value.iter().enumerate() {
            self.nic.write_word(ctx, self.lock.data() + i, w);
        }
        self.nic.write_word(ctx, self.lock.v2(), next);
        self.version = next;
    }

    /// Read a consistent snapshot (retrying in virtual time while an
    /// update is in flight). Returns the payload and its version.
    pub fn read(&mut self, ctx: &mut ProcCtx) -> (Vec<Word>, Word) {
        loop {
            if let Some(out) = self.try_read(ctx) {
                return out;
            }
            ctx.advance(self.backoff_ns);
        }
    }

    /// One non-retrying attempt: `None` if an update was in flight.
    /// Counter order per the module docs: `v2`, data, `v1`.
    pub fn try_read(&mut self, ctx: &mut ProcCtx) -> Option<(Vec<Word>, Word)> {
        let v2 = self.nic.read_word(ctx, self.lock.v2());
        let data = self.nic.read_block(ctx, self.lock.data(), self.lock.words);
        let v1 = self.nic.read_word(ctx, self.lock.v1());
        (v1 == v2).then_some((data, v1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Simulation;
    use parking_lot::Mutex;
    use scramnet::{CostModel, Ring};
    use std::sync::Arc;

    /// Records are `[k, k*2, k*3]` — torn snapshots are detectable.
    fn record(k: Word) -> Vec<Word> {
        vec![k, k.wrapping_mul(2), k.wrapping_mul(3)]
    }

    fn coherent(v: &[Word]) -> bool {
        v[1] == v[0].wrapping_mul(2) && v[2] == v[0].wrapping_mul(3)
    }

    #[test]
    fn snapshots_are_never_torn_under_continuous_writes() {
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), 2, 64, CostModel::default());
        let sl = SeqLock::layout(0, 3, 0);
        let mut w = sl.handle(ring.nic(0));
        let mut r = sl.handle(ring.nic(1));
        sim.spawn("writer", move |ctx| {
            for k in 1..200u32 {
                w.publish(ctx, &record(k));
                ctx.advance(700);
            }
        });
        sim.spawn("reader", move |ctx| {
            let mut last_version = 0;
            for _ in 0..300 {
                let (snap, version) = r.read(ctx);
                if version > 0 {
                    assert!(
                        coherent(&snap),
                        "torn snapshot {snap:?} at version {version}"
                    );
                }
                assert!(version >= last_version, "versions went backwards");
                last_version = version;
                ctx.advance(500);
            }
        });
        let report = sim.run();
        assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
    }

    #[test]
    fn raw_reads_of_the_same_traffic_do_tear() {
        // The control experiment: read the words without the version
        // protocol under the same write pattern; torn snapshots appear.
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), 2, 64, CostModel::default());
        let sl = SeqLock::layout(0, 3, 0);
        let mut w = sl.handle(ring.nic(0));
        let nic = ring.nic(1);
        let data_base = 1; // SeqLock's data starts one past base
        sim.spawn("writer", move |ctx| {
            for k in 1..200u32 {
                w.publish(ctx, &record(k));
                ctx.advance(700);
            }
        });
        let torn = Arc::new(Mutex::new(0u32));
        let torn2 = Arc::clone(&torn);
        sim.spawn("raw-reader", move |ctx| {
            for _ in 0..300 {
                let snap = nic.read_block(ctx, data_base, 3);
                if snap[0] != 0 && !coherent(&snap) {
                    *torn2.lock() += 1;
                }
                ctx.advance(500);
            }
        });
        sim.run();
        assert!(
            *torn.lock() > 0,
            "expected raw reads to tear under this pattern"
        );
    }

    #[test]
    fn counter_order_is_load_bearing() {
        // The broken reader (v1 first, v2 last — the "obvious" order)
        // accepts torn snapshots under the same traffic. This pins the
        // reasoning in the module docs.
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), 2, 64, CostModel::default());
        let sl = SeqLock::layout(0, 3, 0);
        let mut w = sl.handle(ring.nic(0));
        let nic = ring.nic(1);
        sim.spawn("writer", move |ctx| {
            for k in 1..400u32 {
                w.publish(ctx, &record(k));
                ctx.advance(600);
            }
        });
        let torn_accepted = Arc::new(Mutex::new(0u32));
        let torn2 = Arc::clone(&torn_accepted);
        sim.spawn("broken-reader", move |ctx| {
            for _ in 0..600 {
                let v1 = nic.read_word(ctx, 0);
                let data = nic.read_block(ctx, 1, 3);
                let v2 = nic.read_word(ctx, 4);
                if v1 == v2 && data[0] != 0 && !coherent(&data) {
                    *torn2.lock() += 1;
                }
                ctx.advance(300);
            }
        });
        sim.run();
        assert!(
            *torn_accepted.lock() > 0,
            "the reversed counter order should have accepted torn snapshots"
        );
    }

    #[test]
    fn try_read_succeeds_after_quiescence() {
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), 2, 64, CostModel::default());
        let sl = SeqLock::layout(8, 2, 0);
        let mut w = sl.handle(ring.nic(0));
        let mut r = sl.handle(ring.nic(1));
        sim.spawn("writer", move |ctx| {
            w.publish(ctx, &[1, 2]);
        });
        sim.spawn("reader", move |ctx| {
            ctx.wait_until(des::us(100));
            let (snap, v) = r.try_read(ctx).expect("stable after quiescence");
            assert_eq!(snap, vec![1, 2]);
            assert_eq!(v, 1);
        });
        assert!(sim.run().is_clean());
    }

    #[test]
    #[should_panic(expected = "non-owner")]
    fn non_owner_publish_rejected() {
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), 2, 64, CostModel::default());
        let sl = SeqLock::layout(0, 2, 0);
        let mut intruder = sl.handle(ring.nic(1));
        sim.spawn("x", move |ctx| intruder.publish(ctx, &[1, 2]));
        sim.run();
    }

    #[test]
    fn version_wraps_safely() {
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), 2, 64, CostModel::default());
        let sl = SeqLock::layout(0, 1, 0);
        let mut w = sl.handle(ring.nic(0));
        w.version = Word::MAX;
        let mut r = sl.handle(ring.nic(1));
        sim.spawn("writer", move |ctx| {
            w.publish(ctx, &[42]); // version wraps to 0
            assert_eq!(w.version, 0);
        });
        sim.spawn("reader", move |ctx| {
            ctx.wait_until(des::us(100));
            let (snap, v) = r.read(ctx);
            assert_eq!(snap, vec![42]);
            assert_eq!(v, 0);
        });
        assert!(sim.run().is_clean());
    }
}
