//! Lamport's bakery algorithm over replicated memory.
//!
//! The bakery algorithm needs only single-writer *safe* registers, so it
//! is one of the few mutual-exclusion algorithms that is correct on a
//! non-coherent reflective-memory network, where a remote read may
//! return a stale value during propagation (our words are *regular*,
//! which is stronger than safe).

use des::{ProcCtx, Time};
use scramnet::{Nic, WordAddr};

/// Shared-memory layout of one bakery lock for `n` processes:
/// `choosing[n]` then `number[n]`, each word written only by its owner.
#[derive(Debug, Clone)]
pub struct BakeryLock {
    base: WordAddr,
    n: usize,
}

/// Words occupied by a lock for `n` processes.
pub const fn bakery_words(n: usize) -> usize {
    2 * n
}

impl BakeryLock {
    /// Place a lock for `n` processes at word offset `base`.
    pub fn layout(base: WordAddr, n: usize) -> Self {
        assert!(n >= 1, "a lock needs at least one participant");
        BakeryLock { base, n }
    }

    /// Words this lock occupies (reserve them when planning memory).
    pub fn words(&self) -> usize {
        bakery_words(self.n)
    }

    fn choosing(&self, p: usize) -> WordAddr {
        self.base + p
    }

    fn number(&self, p: usize) -> WordAddr {
        self.base + self.n + p
    }

    /// Bind the lock to one process's NIC. The NIC's node id is the
    /// process's identity in the lock (must be `< n`).
    pub fn handle(&self, nic: Nic) -> BakeryHandle {
        assert!(
            nic.node() < self.n,
            "node {} outside the lock's {} slots",
            nic.node(),
            self.n
        );
        // Worst-case one-way propagation of a doorway write: full ring
        // transit plus queueing behind every other contender's doorway
        // writes (3 words each) — then doubled, per the correctness
        // argument in `lock()`.
        let c = nic.cost_model();
        let ring_n = nic.ring_nodes() as u64;
        let transit = (ring_n - 1) * c.hop_ns + c.fixed_word_ns;
        let queueing = 3 * ring_n * c.fixed_word_ns;
        let settle = 2 * (transit + queueing);
        BakeryHandle {
            lock: self.clone(),
            me: nic.node(),
            nic,
            backoff_ns: 400,
            settle_ns: settle,
        }
    }
}

/// One process's handle on a [`BakeryLock`].
pub struct BakeryHandle {
    lock: BakeryLock,
    nic: Nic,
    me: usize,
    /// Pause between poll rounds while waiting (PIO reads are costly).
    backoff_ns: Time,
    /// Post-doorway settle delay covering write propagation (see
    /// [`BakeryHandle::lock`]).
    settle_ns: Time,
}

impl BakeryHandle {
    /// Adjust the waiting poll pause (default 400 ns).
    pub fn set_backoff(&mut self, ns: Time) {
        self.backoff_ns = ns;
    }

    /// Acquire the lock (doorway + waiting phase). Virtual time passes
    /// while contending; deadlock-free and FIFO by ticket order.
    pub fn lock(&mut self, ctx: &mut ProcCtx) {
        let l = &self.lock;
        // Doorway: pick a number one larger than anything visible.
        self.nic.write_word(ctx, l.choosing(self.me), 1);
        let mut max = 0;
        for p in 0..l.n {
            let num = self.nic.read_word(ctx, l.number(p));
            max = max.max(num);
        }
        let ticket = max
            .checked_add(1)
            .expect("bakery ticket overflow: re-create the lock between epochs");
        self.nic.write_word(ctx, l.number(self.me), ticket);
        self.nic.write_word(ctx, l.choosing(self.me), 0);
        // Settle: Lamport's proof needs a read that *starts after a write
        // ends* to return the new value. On replicated memory a write
        // "ends" (the store is posted) long before it is visible
        // remotely, so two near-simultaneous doorways can mutually miss
        // each other's tickets AND the later waiting-phase reads can
        // still be stale, defeating the (ticket, id) tie-break. Waiting
        // 2× the worst-case propagation after the doorway restores the
        // proof: if peer j missed our number in its doorway scan, its
        // number was written within one propagation delay of ours, so
        // after the settle both tickets are visible everywhere and the
        // tie-break decides. (The property tests in
        // `tests/exclusion_properties.rs` catch the violation within a
        // few cases if this delay is removed.)
        ctx.advance(self.settle_ns);
        // Wait phase: for every peer, wait until it is not choosing and
        // we precede it in (ticket, id) order.
        for p in 0..l.n {
            if p == self.me {
                continue;
            }
            while self.nic.read_word(ctx, l.choosing(p)) != 0 {
                ctx.advance(self.backoff_ns);
            }
            loop {
                let their = self.nic.read_word(ctx, l.number(p));
                if their == 0 || (ticket, self.me) < (their, p) {
                    break;
                }
                ctx.advance(self.backoff_ns);
            }
        }
    }

    /// Release the lock.
    pub fn unlock(&mut self, ctx: &mut ProcCtx) {
        self.nic.write_word(ctx, self.lock.number(self.me), 0);
    }

    /// Convenience: run `f` inside the lock.
    pub fn with_lock<R>(&mut self, ctx: &mut ProcCtx, f: impl FnOnce(&mut ProcCtx) -> R) -> R {
        self.lock(ctx);
        let r = f(ctx);
        self.unlock(ctx);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Simulation;
    use parking_lot::Mutex;
    use scramnet::{CostModel, Ring};
    use std::sync::Arc;

    /// N processes hammer a critical section; verify mutual exclusion by
    /// interval disjointness and progress by total count.
    fn exclusion_run(n: usize, rounds: usize, think_ns: u64) {
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), n, 64, CostModel::default());
        let lock = BakeryLock::layout(0, n);
        let intervals: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        for node in 0..n {
            let mut h = lock.handle(ring.nic(node));
            let intervals = Arc::clone(&intervals);
            sim.spawn(format!("p{node}"), move |ctx| {
                for r in 0..rounds {
                    // Desynchronize arrivals.
                    ctx.advance(think_ns * ((node + r) as u64 % 5 + 1));
                    h.lock(ctx);
                    let t_in = ctx.now();
                    ctx.advance(2_000); // critical section work
                    let t_out = ctx.now();
                    h.unlock(ctx);
                    intervals.lock().push((t_in, t_out));
                }
            });
        }
        let report = sim.run();
        assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
        let mut iv = intervals.lock().clone();
        assert_eq!(iv.len(), n * rounds, "every acquisition completed");
        iv.sort_unstable();
        for w in iv.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "critical sections overlap: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn two_processes_exclude() {
        exclusion_run(2, 10, 1_000);
    }

    #[test]
    fn five_processes_exclude_under_contention() {
        exclusion_run(5, 6, 100);
    }

    #[test]
    fn simultaneous_arrivals_exclude() {
        exclusion_run(4, 4, 0);
    }

    #[test]
    fn uncontended_lock_is_fast() {
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), 2, 64, CostModel::default());
        let lock = BakeryLock::layout(0, 2);
        let mut h = lock.handle(ring.nic(0));
        let took = Arc::new(Mutex::new(0u64));
        let took2 = Arc::clone(&took);
        sim.spawn("p0", move |ctx| {
            let t0 = ctx.now();
            h.lock(ctx);
            *took2.lock() = ctx.now() - t0;
            h.unlock(ctx);
        });
        assert!(sim.run().is_clean());
        let t = *took.lock();
        // Doorway (~2 reads + 3 writes + peer scan) plus the mandatory
        // 2×propagation settle — the inherent price of mutual exclusion
        // on reflective memory, and part of why the paper's message
        // passing outperforms lock-based sharing.
        assert!(
            (5_000..20_000).contains(&t),
            "uncontended acquire took {t} ns"
        );
    }

    #[test]
    fn with_lock_returns_value() {
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), 2, 64, CostModel::default());
        let lock = BakeryLock::layout(0, 2);
        let mut h = lock.handle(ring.nic(1));
        sim.spawn("p1", move |ctx| {
            let v = h.with_lock(ctx, |ctx| {
                ctx.advance(100);
                42
            });
            assert_eq!(v, 42);
        });
        assert!(sim.run().is_clean());
    }

    #[test]
    fn single_writer_discipline_holds_under_lock_traffic() {
        let mut sim = Simulation::new();
        let cfg = scramnet::RingConfig {
            track_provenance: true,
            ..Default::default()
        };
        let ring = Ring::with_config(&sim.handle(), 3, 64, CostModel::default(), cfg);
        let lock = BakeryLock::layout(0, 3);
        for node in 0..3 {
            let mut h = lock.handle(ring.nic(node));
            sim.spawn(format!("p{node}"), move |ctx| {
                for _ in 0..4 {
                    h.lock(ctx);
                    ctx.advance(500);
                    h.unlock(ctx);
                }
            });
        }
        assert!(sim.run().is_clean());
        assert!(ring.conflicts().is_empty(), "{:?}", ring.conflicts());
    }

    #[test]
    #[should_panic(expected = "outside the lock")]
    fn handle_requires_participant_node() {
        let sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), 4, 64, CostModel::default());
        let lock = BakeryLock::layout(0, 2);
        let _ = lock.handle(ring.nic(3));
    }
}
