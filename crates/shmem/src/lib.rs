#![warn(missing_docs)]

//! # `shmem` — shared-memory programming on SCRAMNet
//!
//! Before the paper's BillBoard Protocol, SCRAMNet "has been almost
//! exclusively used for shared memory programming" (§2), with
//! synchronization mechanisms developed in Menke, Moir & Ramamurthy,
//! *Synchronization Mechanisms for SCRAMNet+ Systems* (PODC '97) —
//! the paper's reference \[10\]. This crate rebuilds that substrate so the
//! repository covers both programming models the paper discusses.
//!
//! ## Why these algorithms
//!
//! SCRAMNet replication gives each word the semantics of a
//! **single-writer regular register**: one node writes it, every node
//! reads its own replica, and a read concurrent with propagation returns
//! the old or the new value — never garbage, never a third value. There
//! is no compare-and-swap and no total write order across different
//! writers, so classical lock-free primitives don't apply. What *does*
//! work is exactly the classical literature on regular registers:
//!
//! - [`BakeryLock`] — Lamport's bakery algorithm, proven correct with
//!   single-writer regular (even safe) registers;
//! - [`SenseBarrier`] — an all-to-all barrier from per-process monotonic
//!   arrival counters;
//! - [`SeqLock`] — Lamport's two-counter construction for torn-free
//!   multi-word snapshots from a single writer;
//! - [`DistributedCounter`] — per-writer addend cells summed on read
//!   (the standard reflective-memory idiom for shared counters);
//! - [`EventFlag`] — one writer signalling many pollers/sleepers.
//!
//! All offsets follow the same single-writer discipline the BillBoard
//! Protocol uses, so the `scramnet` provenance checker can audit these
//! primitives too (and the tests do).
//!
//! ## Example
//!
//! ```
//! use des::Simulation;
//! use scramnet::{CostModel, Ring};
//! use shmem::BakeryLock;
//!
//! let mut sim = Simulation::new();
//! let ring = Ring::new(&sim.handle(), 2, 256, CostModel::default());
//! let lock = BakeryLock::layout(0, 2); // at word offset 0, 2 processes
//! for node in 0..2 {
//!     let mut guard = lock.handle(ring.nic(node));
//!     sim.spawn(format!("p{node}"), move |ctx| {
//!         guard.lock(ctx);
//!         // ... critical section ...
//!         guard.unlock(ctx);
//!     });
//! }
//! assert!(sim.run().is_clean());
//! ```

mod bakery;
mod barrier;
mod counter;
mod event;
mod seqlock;

pub use bakery::{BakeryHandle, BakeryLock};
pub use barrier::{SenseBarrier, SenseBarrierHandle};
pub use counter::{CounterHandle, DistributedCounter};
pub use event::{EventFlag, EventFlagHandle};
pub use seqlock::{SeqLock, SeqLockHandle};
