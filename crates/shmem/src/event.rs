//! A single-writer event flag: one producer signals state transitions;
//! any number of consumers poll or sleep on the NIC interrupt — the
//! building block of SCRAMNet's original real-time applications (mode
//! switches, frame-ready signals).

use des::{ProcCtx, Signal, Time};
use scramnet::{Nic, Word, WordAddr};

/// Layout: a single word, written only by the owning node.
#[derive(Debug, Clone)]
pub struct EventFlag {
    addr: WordAddr,
    owner: usize,
}

impl EventFlag {
    /// Place an event flag at `addr`, writable by `owner`.
    pub fn layout(addr: WordAddr, owner: usize) -> Self {
        EventFlag { addr, owner }
    }

    /// Bind to a NIC. Only the owner's handle may set the value.
    pub fn handle(&self, nic: Nic) -> EventFlagHandle {
        EventFlagHandle {
            flag: self.clone(),
            nic,
            backoff_ns: 500,
            interrupt: None,
        }
    }
}

/// One node's view of an [`EventFlag`].
pub struct EventFlagHandle {
    flag: EventFlag,
    nic: Nic,
    backoff_ns: Time,
    interrupt: Option<Signal>,
}

impl EventFlagHandle {
    /// Adjust the polling pause used by [`EventFlagHandle::wait_value`].
    pub fn set_backoff(&mut self, ns: Time) {
        self.backoff_ns = ns;
    }

    /// Arm the NIC's interrupt-on-write for this flag; subsequent waits
    /// sleep instead of polling.
    pub fn arm_interrupt(&mut self, signal: Signal) {
        self.nic
            .watch(self.flag.addr..self.flag.addr + 1, signal.clone());
        self.interrupt = Some(signal);
    }

    /// Publish a new value. Panics if called from a non-owner node —
    /// the single-writer discipline is part of the API contract.
    pub fn set(&mut self, ctx: &mut ProcCtx, value: Word) {
        assert_eq!(
            self.nic.node(),
            self.flag.owner,
            "event flag written by non-owner node {}",
            self.nic.node()
        );
        self.nic.write_word(ctx, self.flag.addr, value);
    }

    /// Read the current (replicated) value.
    pub fn get(&self, ctx: &mut ProcCtx) -> Word {
        self.nic.read_word(ctx, self.flag.addr)
    }

    /// Block until the flag equals `value`; returns immediately if it
    /// already does.
    pub fn wait_value(&mut self, ctx: &mut ProcCtx, value: Word) {
        loop {
            if self.get(ctx) == value {
                return;
            }
            match &self.interrupt {
                Some(sig) => {
                    let sig = sig.clone();
                    ctx.wait(&sig);
                }
                None => ctx.advance(self.backoff_ns),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::{us, Simulation};
    use scramnet::{CostModel, Ring};

    #[test]
    fn polling_waiter_observes_transition() {
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), 2, 16, CostModel::default());
        let flag = EventFlag::layout(3, 0);
        let mut owner = flag.handle(ring.nic(0));
        let mut waiter = flag.handle(ring.nic(1));
        sim.spawn("owner", move |ctx| {
            ctx.wait_until(us(100));
            owner.set(ctx, 0xAA);
        });
        sim.spawn("waiter", move |ctx| {
            waiter.wait_value(ctx, 0xAA);
            assert!(ctx.now() >= us(100));
        });
        assert!(sim.run().is_clean());
    }

    #[test]
    fn interrupt_waiter_sleeps_instead_of_polling() {
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), 2, 16, CostModel::default());
        let flag = EventFlag::layout(3, 0);
        let mut owner = flag.handle(ring.nic(0));
        let mut waiter = flag.handle(ring.nic(1));
        let sig = sim.handle().new_signal();
        waiter.arm_interrupt(sig);
        sim.spawn("owner", move |ctx| {
            ctx.wait_until(us(500));
            owner.set(ctx, 7);
        });
        sim.spawn("waiter", move |ctx| {
            waiter.wait_value(ctx, 7);
            assert!(ctx.now() >= us(500));
        });
        let report = sim.run();
        assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
        // Interrupt mode: a handful of PIO reads, not ~1000 poll spins.
        assert!(
            ring.stats().pio_reads < 10,
            "polled {} times",
            ring.stats().pio_reads
        );
        assert_eq!(ring.stats().interrupts, 1);
    }

    #[test]
    fn wait_on_already_set_value_returns_immediately() {
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), 2, 16, CostModel::default());
        let flag = EventFlag::layout(0, 0);
        let mut owner = flag.handle(ring.nic(0));
        sim.spawn("owner", move |ctx| {
            owner.set(ctx, 5);
            let t = ctx.now();
            owner.wait_value(ctx, 5);
            assert_eq!(ctx.now(), t + CostModel::default().pio_read_ns);
        });
        assert!(sim.run().is_clean());
    }

    #[test]
    #[should_panic(expected = "non-owner")]
    fn non_owner_writes_are_rejected() {
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), 2, 16, CostModel::default());
        let flag = EventFlag::layout(0, 0);
        let mut intruder = flag.handle(ring.nic(1));
        sim.spawn("intruder", move |ctx| intruder.set(ctx, 1));
        sim.run();
    }
}
