//! An all-to-all flag barrier — the shared-memory counterpart of the
//! paper's BBP barrier.
//!
//! Each process owns one word holding its *arrival count* (a monotonic
//! epoch number). To pass the barrier, a process publishes its new count
//! and polls until every peer's count has caught up. Monotonic counters
//! (rather than sense-reversal bits) make reuse safe on replicated
//! memory: a fast process that has already entered a later epoch shows a
//! count *greater* than the one a slow peer is waiting for, which still
//! satisfies the wait condition — stale replicas can only delay, never
//! deadlock.

use des::{ProcCtx, Time};
use scramnet::{Nic, WordAddr};

/// Layout: one arrival-count word per process, written only by its owner.
#[derive(Debug, Clone)]
pub struct SenseBarrier {
    base: WordAddr,
    n: usize,
}

impl SenseBarrier {
    /// Place a barrier for `n` processes at word offset `base`
    /// (occupies `n` words).
    pub fn layout(base: WordAddr, n: usize) -> Self {
        assert!(n >= 1);
        SenseBarrier { base, n }
    }

    /// Words this barrier occupies.
    pub fn words(&self) -> usize {
        self.n
    }

    fn flag(&self, p: usize) -> WordAddr {
        self.base + p
    }

    /// Bind to one process's NIC.
    pub fn handle(&self, nic: Nic) -> SenseBarrierHandle {
        assert!(nic.node() < self.n, "node outside the barrier's slots");
        SenseBarrierHandle {
            barrier: self.clone(),
            me: nic.node(),
            nic,
            epoch: 0,
            backoff_ns: 400,
        }
    }
}

/// One process's handle on a [`SenseBarrier`].
pub struct SenseBarrierHandle {
    barrier: SenseBarrier,
    nic: Nic,
    me: usize,
    /// Completed epochs (== the count this process has published).
    epoch: u32,
    backoff_ns: Time,
}

impl SenseBarrierHandle {
    /// Adjust the waiting poll pause.
    pub fn set_backoff(&mut self, ns: Time) {
        self.backoff_ns = ns;
    }

    /// Epochs completed so far by this process.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Enter the barrier; returns when every process has entered this
    /// epoch (or a later one).
    pub fn wait(&mut self, ctx: &mut ProcCtx) {
        let target = self
            .epoch
            .checked_add(1)
            .expect("barrier epoch overflow: re-create the barrier");
        self.nic.write_word(ctx, self.barrier.flag(self.me), target);
        for p in 0..self.barrier.n {
            if p == self.me {
                continue;
            }
            while self.nic.read_word(ctx, self.barrier.flag(p)) < target {
                ctx.advance(self.backoff_ns);
            }
        }
        self.epoch = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Simulation;
    use parking_lot::Mutex;
    use scramnet::{CostModel, Ring};
    use std::sync::Arc;

    #[test]
    fn no_one_exits_before_the_last_arrival() {
        let mut sim = Simulation::new();
        let n = 4;
        let ring = Ring::new(&sim.handle(), n, 64, CostModel::default());
        let b = SenseBarrier::layout(0, n);
        let enters = Arc::new(Mutex::new(Vec::new()));
        let exits = Arc::new(Mutex::new(Vec::new()));
        for node in 0..n {
            let mut h = b.handle(ring.nic(node));
            let enters = Arc::clone(&enters);
            let exits = Arc::clone(&exits);
            sim.spawn(format!("p{node}"), move |ctx| {
                ctx.wait_until(des::us(37 * node as u64));
                enters.lock().push(ctx.now());
                h.wait(ctx);
                exits.lock().push(ctx.now());
            });
        }
        assert!(sim.run().is_clean());
        let last_in = *enters.lock().iter().max().unwrap();
        let first_out = *exits.lock().iter().min().unwrap();
        assert!(first_out >= last_in, "{first_out} < {last_in}");
    }

    #[test]
    fn barrier_is_reusable_across_epochs() {
        let mut sim = Simulation::new();
        let n = 3;
        let ring = Ring::new(&sim.handle(), n, 64, CostModel::default());
        let b = SenseBarrier::layout(8, n);
        let log = Arc::new(Mutex::new(Vec::new()));
        for node in 0..n {
            let mut h = b.handle(ring.nic(node));
            let log = Arc::clone(&log);
            sim.spawn(format!("p{node}"), move |ctx| {
                for round in 0..5u32 {
                    ctx.advance(1_000 * (node as u64 + 1));
                    h.wait(ctx);
                    log.lock().push((round, node, ctx.now()));
                }
                assert_eq!(h.epoch(), 5);
            });
        }
        assert!(sim.run().is_clean());
        // No process exits round r+1 before every process entered round
        // r+1, which in turn is after it exited round r: rounds can
        // overlap in wall-clock (a fast process runs ahead) but each
        // process's own log must be strictly ordered and all exits of
        // round r must precede the LAST exit of round r+1.
        let log = log.lock();
        for r in 0..4u32 {
            let min_r = log.iter().filter(|e| e.0 == r).map(|e| e.2).min().unwrap();
            let max_next = log
                .iter()
                .filter(|e| e.0 == r + 1)
                .map(|e| e.2)
                .max()
                .unwrap();
            assert!(min_r <= max_next);
        }
        for node in 0..n {
            let times: Vec<u64> = log.iter().filter(|e| e.1 == node).map(|e| e.2).collect();
            assert!(times.windows(2).all(|w| w[0] < w[1]), "per-process order");
        }
    }

    #[test]
    fn fast_process_reentry_cannot_deadlock_slow_peers() {
        // The exact scenario that breaks sense-reversal bits on
        // replicated memory: one process races ahead through many epochs
        // while another is slow. Monotonic counts must stay live.
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), 2, 64, CostModel::default());
        let b = SenseBarrier::layout(0, 2);
        let mut fast = b.handle(ring.nic(0));
        let mut slow = b.handle(ring.nic(1));
        sim.spawn("fast", move |ctx| {
            for _ in 0..10 {
                fast.wait(ctx); // no think time at all
            }
        });
        sim.spawn("slow", move |ctx| {
            for _ in 0..10 {
                ctx.advance(50_000);
                slow.wait(ctx);
            }
        });
        let report = sim.run();
        assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
    }

    #[test]
    fn single_process_barrier_is_immediate() {
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), 2, 64, CostModel::default());
        let b = SenseBarrier::layout(0, 1);
        let mut h = b.handle(ring.nic(0));
        sim.spawn("p0", move |ctx| {
            h.wait(ctx);
            assert!(ctx.now() < 1_000, "one flag write only");
        });
        assert!(sim.run().is_clean());
    }
}
