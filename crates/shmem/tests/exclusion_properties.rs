//! Property-based verification of the shared-memory primitives under
//! randomized (but seeded, reproducible) schedules: bakery mutual
//! exclusion, barrier epoch integrity and counter convergence, with the
//! wire-level single-writer audit running underneath everything.

use std::sync::Arc;

use des::rng::SimRng;
use des::Simulation;
use parking_lot::Mutex;
use proptest::prelude::*;
use scramnet::{CostModel, Ring, RingConfig};
use shmem::{BakeryLock, DistributedCounter, SenseBarrier};

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn bakery_excludes_under_random_schedules(
        n in 2usize..6,
        rounds in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut sim = Simulation::new();
        let cfg = RingConfig { track_provenance: true, ..Default::default() };
        let ring = Ring::with_config(&sim.handle(), n, 64, CostModel::default(), cfg);
        let lock = BakeryLock::layout(0, n);
        let intervals: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        for node in 0..n {
            let mut h = lock.handle(ring.nic(node));
            let intervals = Arc::clone(&intervals);
            sim.spawn(format!("p{node}"), move |ctx| {
                let mut rng = SimRng::seeded(seed ^ (node as u64).wrapping_mul(0x9E37_79B9));
                for _ in 0..rounds {
                    ctx.advance(rng.below(20_000));
                    h.lock(ctx);
                    let t_in = ctx.now();
                    ctx.advance(rng.below(3_000) + 1);
                    let t_out = ctx.now();
                    h.unlock(ctx);
                    intervals.lock().push((t_in, t_out));
                }
            });
        }
        let report = sim.run();
        prop_assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
        let mut iv = intervals.lock().clone();
        prop_assert_eq!(iv.len(), n * rounds);
        iv.sort_unstable();
        for w in iv.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
        prop_assert!(ring.conflicts().is_empty(), "single-writer violated");
    }

    #[test]
    fn barrier_rounds_never_interleave_per_process(
        n in 2usize..6,
        epochs in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), n, 64, CostModel::default());
        let b = SenseBarrier::layout(0, n);
        let exits: Arc<Mutex<Vec<(usize, u32, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let enters: Arc<Mutex<Vec<(u32, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        for node in 0..n {
            let mut h = b.handle(ring.nic(node));
            let exits = Arc::clone(&exits);
            let enters = Arc::clone(&enters);
            sim.spawn(format!("p{node}"), move |ctx| {
                let mut rng = SimRng::seeded(seed ^ node as u64);
                for e in 0..epochs as u32 {
                    ctx.advance(rng.below(30_000));
                    enters.lock().push((e, ctx.now()));
                    h.wait(ctx);
                    exits.lock().push((node, e, ctx.now()));
                }
            });
        }
        let report = sim.run();
        prop_assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
        // Barrier property per epoch: nobody exits epoch e before the
        // last process entered epoch e.
        let exits = exits.lock();
        let enters = enters.lock();
        for e in 0..epochs as u32 {
            let last_enter = enters.iter().filter(|x| x.0 == e).map(|x| x.1).max().unwrap();
            let first_exit = exits.iter().filter(|x| x.1 == e).map(|x| x.2).min().unwrap();
            prop_assert!(first_exit >= last_enter, "epoch {} leaked", e);
        }
    }

    #[test]
    fn counter_total_is_exact_after_quiescence(
        n in 2usize..6,
        adds in prop::collection::vec((0usize..6, 1u32..100), 0..30),
    ) {
        let mut sim = Simulation::new();
        let ring = Ring::new(&sim.handle(), n, 64, CostModel::default());
        let c = DistributedCounter::layout(0, n);
        let mut per_node: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut expected: u64 = 0;
        for (node, delta) in adds {
            if node < n {
                per_node[node].push(delta);
                expected += delta as u64;
            }
        }
        for (node, deltas) in per_node.into_iter().enumerate() {
            let mut h = c.handle(ring.nic(node));
            sim.spawn(format!("p{node}"), move |ctx| {
                for d in deltas {
                    h.add(ctx, d);
                    ctx.advance(700);
                }
            });
        }
        let reader = c.handle(ring.nic(0));
        sim.spawn("reader", move |ctx| {
            ctx.wait_until(des::ms(10));
            let got = reader.read(ctx) as u64;
            assert_eq!(got, expected);
        });
        prop_assert!(sim.run().is_clean());
    }
}
