//! Device-layer integration tests: the channel-interface contract
//! (reliable per-pair FIFO frames, round-robin progress) over each real
//! transport, below the ADI.

use des::{Simulation, Time};
use netsim::{MyrinetApiNet, NetSpec, TcpCosts, TcpNet};
use parking_lot::Mutex;
use smpi::{BbpDevice, Device, HybridDevice, MyrinetDevice, TcpDevice};
use std::sync::Arc;

fn tcp_device_pairs(sim: &Simulation, hosts: usize) -> Vec<TcpDevice> {
    let net = TcpNet::new(
        &sim.handle(),
        NetSpec::fast_ethernet(hosts),
        TcpCosts::fast_ethernet(),
    );
    (0..hosts)
        .map(|rank| {
            let socks = (0..hosts)
                .map(|p| (p != rank).then(|| net.connect(rank, p)))
                .collect();
            TcpDevice::new(rank, socks)
        })
        .collect()
}

#[test]
fn tcp_device_preserves_per_pair_fifo() {
    let mut sim = Simulation::new();
    let mut devs = tcp_device_pairs(&sim, 3);
    let d2 = devs.pop().unwrap();
    let d1 = devs.pop().unwrap();
    let mut d0 = devs.pop().unwrap();
    for (mut dev, label) in [(d1, 1u8), (d2, 2u8)] {
        sim.spawn(format!("tx{label}"), move |ctx| {
            for i in 0..15u8 {
                dev.send_frame(ctx, 0, &[label, i]).unwrap();
            }
        });
    }
    sim.spawn("rx", move |ctx| {
        let mut next = [0u8; 3];
        let mut got = 0;
        while got < 30 {
            if let Some((src, frame)) = d0.try_recv_frame(ctx) {
                assert_eq!(frame[0] as usize, src);
                assert_eq!(frame[1], next[src], "per-pair FIFO broken for {src}");
                next[src] += 1;
                got += 1;
            } else {
                ctx.advance(5_000);
            }
        }
    });
    assert!(sim.run().is_clean());
}

#[test]
fn tcp_device_round_robin_serves_all_peers() {
    // With frames waiting from two peers, consecutive try_recv calls
    // must not starve either source.
    let mut sim = Simulation::new();
    let mut devs = tcp_device_pairs(&sim, 3);
    let d2 = devs.pop().unwrap();
    let d1 = devs.pop().unwrap();
    let mut d0 = devs.pop().unwrap();
    for (mut dev, label) in [(d1, 1u8), (d2, 2u8)] {
        sim.spawn(format!("tx{label}"), move |ctx| {
            for i in 0..8u8 {
                dev.send_frame(ctx, 0, &[label, i]).unwrap();
            }
        });
    }
    let order: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let order2 = Arc::clone(&order);
    sim.spawn("rx", move |ctx| {
        ctx.wait_until(des::ms(5)); // let everything arrive first
        let mut got = 0;
        while got < 16 {
            if let Some((src, _)) = d0.try_recv_frame(ctx) {
                order2.lock().push(src);
                got += 1;
            } else {
                ctx.advance(1_000);
            }
        }
    });
    assert!(sim.run().is_clean());
    let order = order.lock();
    // With both queues full, RR must alternate: no source appears three
    // times consecutively.
    for w in order.windows(3) {
        assert!(
            !(w[0] == w[1] && w[1] == w[2]),
            "round-robin starved a source: {order:?}"
        );
    }
}

#[test]
fn myrinet_device_carries_frames() {
    let mut sim = Simulation::new();
    let net = MyrinetApiNet::new(&sim.handle(), 2);
    let mut tx = MyrinetDevice::new(net.port(0), 2);
    let mut rx = MyrinetDevice::new(net.port(1), 2);
    assert_eq!(tx.rank(), 0);
    assert_eq!(rx.nprocs(), 2);
    assert!(!rx.has_native_mcast());
    sim.spawn("tx", move |ctx| {
        tx.send_frame(ctx, 1, b"over myrinet").unwrap()
    });
    sim.spawn("rx", move |ctx| loop {
        if let Some((src, frame)) = rx.try_recv_frame(ctx) {
            assert_eq!(src, 0);
            assert_eq!(frame, b"over myrinet");
            break;
        }
        ctx.advance(5_000);
    });
    assert!(sim.run().is_clean());
}

#[test]
fn hybrid_device_reports_fast_path_capabilities() {
    let mut sim = Simulation::new();
    let cluster = bbp::BbpCluster::new(&sim.handle(), bbp::BbpConfig::for_nodes(2));
    let net = MyrinetApiNet::new(&sim.handle(), 2);
    let fast = Box::new(BbpDevice::new(cluster.endpoint(0)));
    let bulk = Box::new(MyrinetDevice::new(net.port(0), 2));
    let hy = HybridDevice::new(fast, bulk, 512);
    assert!(hy.has_native_mcast(), "mcast comes from the BBP fast path");
    assert_eq!(hy.threshold(), 512);
    assert_eq!(hy.rank(), 0);
    // Bulk path (Myrinet) is unlimited, minus the 5-byte wrapper = None.
    assert_eq!(hy.max_frame(), None);
    drop(sim.run());
}

#[test]
fn hybrid_device_mixed_sizes_stay_ordered_at_device_level() {
    let mut sim = Simulation::new();
    let cluster = bbp::BbpCluster::new(&sim.handle(), {
        let mut c = bbp::BbpConfig::for_nodes(2);
        c.data_words = 4096;
        c
    });
    let net = MyrinetApiNet::new(&sim.handle(), 2);
    let mut tx = HybridDevice::new(
        Box::new(BbpDevice::new(cluster.endpoint(0))),
        Box::new(MyrinetDevice::new(net.port(0), 2)),
        256,
    );
    let mut rx = HybridDevice::new(
        Box::new(BbpDevice::new(cluster.endpoint(1))),
        Box::new(MyrinetDevice::new(net.port(1), 2)),
        256,
    );
    sim.spawn("tx", move |ctx| {
        for i in 0..20u8 {
            // Alternate tiny (fast path) and 1 KB (bulk path) frames.
            let len = if i % 2 == 0 { 8 } else { 1024 };
            let mut frame = vec![i; len];
            frame[0] = i;
            tx.send_frame(ctx, 1, &frame).unwrap();
        }
    });
    let seen: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let seen2 = Arc::clone(&seen);
    sim.spawn("rx", move |ctx| {
        let mut got = 0;
        while got < 20 {
            if let Some((_, frame)) = rx.try_recv_frame(ctx) {
                seen2.lock().push(frame[0]);
                got += 1;
            } else {
                ctx.advance(2_000);
            }
        }
    });
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
    let seen = seen.lock();
    let expect: Vec<u8> = (0..20).collect();
    assert_eq!(*seen, expect, "resequencer must restore send order");
}

/// The Myrinet-path timing matters: a tiny frame right behind a bulk one
/// must not be delayed by it (it overtakes on the fast network and waits
/// in the resequencer only as long as the bulk frame's true transit).
#[test]
fn small_frames_overtake_on_the_wire_but_deliver_in_order() {
    let mut sim = Simulation::new();
    let cluster = bbp::BbpCluster::new(&sim.handle(), bbp::BbpConfig::for_nodes(2));
    let net = MyrinetApiNet::new(&sim.handle(), 2);
    let mut tx = HybridDevice::new(
        Box::new(BbpDevice::new(cluster.endpoint(0))),
        Box::new(MyrinetDevice::new(net.port(0), 2)),
        256,
    );
    let mut rx = HybridDevice::new(
        Box::new(BbpDevice::new(cluster.endpoint(1))),
        Box::new(MyrinetDevice::new(net.port(1), 2)),
        256,
    );
    let times: Arc<Mutex<Vec<(u8, Time)>>> = Arc::new(Mutex::new(Vec::new()));
    let times2 = Arc::clone(&times);
    sim.spawn("tx", move |ctx| {
        tx.send_frame(ctx, 1, &vec![1u8; 8 * 1024]).unwrap(); // bulk
        tx.send_frame(ctx, 1, &[2u8; 8]).unwrap(); // tiny, right behind
    });
    sim.spawn("rx", move |ctx| {
        let mut got = 0;
        while got < 2 {
            if let Some((_, frame)) = rx.try_recv_frame(ctx) {
                times2.lock().push((frame[0], ctx.now()));
                got += 1;
            } else {
                ctx.advance(2_000);
            }
        }
    });
    assert!(sim.run().is_clean());
    let times = times.lock();
    assert_eq!(times[0].0, 1, "bulk first (order preserved)");
    assert_eq!(times[1].0, 2);
    assert!(times[1].1 >= times[0].1);
}
