//! MPI over a faulted SCRAMNet ring: the BBP reliability layer either
//! repairs the damage transparently or the failure surfaces as a typed
//! `MpiError::Transport` — never as silent corruption or a hang.

use bbp::BbpConfig;
use des::Simulation;
use scramnet::CostModel;
use smpi::{CollectiveImpl, DeviceError, MpiError, MpiWorld, SmpiCosts};

fn reliable_world(sim: &Simulation, nprocs: usize) -> MpiWorld {
    MpiWorld::scramnet_with(
        &sim.handle(),
        BbpConfig::reliable_for_nodes(nprocs),
        CostModel::default(),
        SmpiCosts::channel_interface(),
        CollectiveImpl::Native,
    )
}

#[test]
fn dropped_packets_are_repaired_below_mpi() {
    let mut sim = Simulation::new();
    let world = reliable_world(&sim, 2);
    let ring = world.bbp_cluster().unwrap().ring().clone();
    // Swallow one whole BBP transmission (payload + descriptor + flag):
    // the reliability layer must retransmit without MPI noticing.
    ring.arm_drop(3);
    let mut m0 = world.proc(0);
    let mut m1 = world.proc(1);
    sim.spawn("r0", move |ctx| {
        let comm = m0.comm_world();
        m0.send(ctx, &comm, 1, 7, b"through the storm").unwrap();
    });
    sim.spawn("r1", move |ctx| {
        let comm = m1.comm_world();
        let (st, data) = m1.recv(ctx, &comm, Some(0), Some(7)).unwrap();
        assert_eq!(data, b"through the storm");
        assert_eq!(st.source, 0);
    });
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
    assert!(ring.stats().packets_dropped >= 1, "the fault was armed");
}

#[test]
fn send_to_a_dead_peer_returns_a_typed_mpi_error() {
    let mut sim = Simulation::new();
    let world = reliable_world(&sim, 3);
    let ring = world.bbp_cluster().unwrap().ring().clone();
    ring.bypass_node(1);
    let mut m0 = world.proc(0);
    sim.spawn("r0", move |ctx| {
        let comm = m0.comm_world();
        let err = m0.send(ctx, &comm, 1, 1, b"into the void").unwrap_err();
        assert_eq!(err, MpiError::Transport(DeviceError::PeerDown { peer: 1 }));
        // The library survives the failure: traffic to a live peer
        // still flows.
        m0.send(ctx, &comm, 2, 1, b"still alive").unwrap();
    });
    let mut m2 = world.proc(2);
    sim.spawn("r2", move |ctx| {
        let comm = m2.comm_world();
        let (_, data) = m2.recv(ctx, &comm, Some(0), Some(1)).unwrap();
        assert_eq!(data, b"still alive");
    });
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
}

#[test]
fn isend_reports_the_error_without_creating_a_request() {
    let mut sim = Simulation::new();
    let world = reliable_world(&sim, 2);
    let ring = world.bbp_cluster().unwrap().ring().clone();
    ring.bypass_node(1);
    let mut m0 = world.proc(0);
    sim.spawn("r0", move |ctx| {
        let comm = m0.comm_world();
        let err = m0.isend(ctx, &comm, 1, 1, b"x").unwrap_err();
        assert!(
            matches!(err, MpiError::Transport(DeviceError::PeerDown { .. })),
            "got {err:?}"
        );
    });
    assert!(sim.run().is_clean());
}
