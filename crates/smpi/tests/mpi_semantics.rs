#![allow(clippy::needless_range_loop)]

//! MPI semantics over both devices: matching, wildcards, ordering,
//! rendezvous, and collectives (native vs point-to-point).

use std::sync::Arc;

use des::{Simulation, TimeExt};
use parking_lot::Mutex;
use smpi::{CollectiveImpl, MpiWorld, ReduceOp, ANY_SOURCE, ANY_TAG};

/// Run `body(rank)` on every rank of a world; panics inside propagate.
fn run_world<F>(world: &MpiWorld, sim: &mut Simulation, body: F)
where
    F: Fn(&mut smpi::Mpi, &mut des::ProcCtx) + Send + Sync + 'static,
{
    let body = Arc::new(body);
    for rank in 0..world.nprocs() {
        let mut mpi = world.proc(rank);
        let body = Arc::clone(&body);
        sim.spawn(format!("rank{rank}"), move |ctx| body(&mut mpi, ctx));
    }
}

fn finish(mut sim: Simulation) {
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
}

#[test]
fn ping_pong_over_scramnet() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 2);
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        if mpi.rank() == 0 {
            mpi.send(ctx, &comm, 1, 7, b"ping").unwrap();
            let (st, m) = mpi.recv(ctx, &comm, Some(1), Some(8)).unwrap();
            assert_eq!(m, b"pong");
            assert_eq!(st.source, 1);
            assert_eq!(st.len, 4);
        } else {
            let (st, m) = mpi.recv(ctx, &comm, Some(0), Some(7)).unwrap();
            assert_eq!(m, b"ping");
            assert_eq!(st.tag, 7);
            mpi.send(ctx, &comm, 0, 8, b"pong").unwrap();
        }
    });
    finish(sim);
}

#[test]
fn ping_pong_over_fast_ethernet() {
    let mut sim = Simulation::new();
    let world = MpiWorld::fast_ethernet(&sim.handle(), 2);
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        if mpi.rank() == 0 {
            mpi.send(ctx, &comm, 1, 1, b"e-ping").unwrap();
            let (_, m) = mpi.recv(ctx, &comm, Some(1), Some(2)).unwrap();
            assert_eq!(m, b"e-pong");
        } else {
            let (_, m) = mpi.recv(ctx, &comm, Some(0), Some(1)).unwrap();
            assert_eq!(m, b"e-ping");
            mpi.send(ctx, &comm, 0, 2, b"e-pong").unwrap();
        }
    });
    finish(sim);
}

#[test]
fn tag_matching_is_selective_not_fifo() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 2);
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        if mpi.rank() == 0 {
            mpi.send(ctx, &comm, 1, 10, b"ten").unwrap();
            mpi.send(ctx, &comm, 1, 20, b"twenty").unwrap();
        } else {
            // Receive out of arrival order by tag selection.
            let (_, m20) = mpi.recv(ctx, &comm, Some(0), Some(20)).unwrap();
            assert_eq!(m20, b"twenty");
            let (_, m10) = mpi.recv(ctx, &comm, Some(0), Some(10)).unwrap();
            assert_eq!(m10, b"ten");
        }
    });
    finish(sim);
}

#[test]
fn wildcard_source_and_tag_receive_everything() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 4);
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        if mpi.rank() == 0 {
            let mut got = [false; 4];
            for _ in 0..3 {
                let (st, m) = mpi.recv(ctx, &comm, ANY_SOURCE, ANY_TAG).unwrap();
                assert_eq!(m, st.source.to_le_bytes()[..1]);
                assert_eq!(st.tag as usize, st.source * 100);
                got[st.source] = true;
            }
            assert_eq!(got, [false, true, true, true]);
        } else {
            let r = mpi.rank();
            mpi.send(ctx, &comm, 0, (r * 100) as u32, &[r as u8])
                .unwrap();
        }
    });
    finish(sim);
}

#[test]
fn same_tag_messages_arrive_in_fifo_order() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 2);
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        if mpi.rank() == 0 {
            for i in 0..25u32 {
                mpi.send(ctx, &comm, 1, 5, &i.to_le_bytes()).unwrap();
            }
        } else {
            for i in 0..25u32 {
                let (_, m) = mpi.recv(ctx, &comm, Some(0), Some(5)).unwrap();
                assert_eq!(u32::from_le_bytes(m.try_into().unwrap()), i);
            }
        }
    });
    finish(sim);
}

#[test]
fn rendezvous_long_messages_round_trip() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 2);
    // Default threshold is 16 KiB; make sure a 24 KiB message (which must
    // use RTS/CTS/Data) survives. Needs a partition that can hold it.
    let payload: Vec<u8> = (0..24 * 1024).map(|i| (i % 251) as u8).collect();
    let expected = payload.clone();
    let mut cfg = bbp::BbpConfig::for_nodes(2);
    cfg.data_words = 16 * 1024; // 64 KiB data partition
    let world = {
        drop(world);
        MpiWorld::scramnet_with(
            &sim.handle(),
            cfg,
            scramnet::CostModel::default(),
            smpi::SmpiCosts::channel_interface(),
            CollectiveImpl::Native,
        )
    };
    let payload2 = payload.clone();
    let mut p0 = world.proc(0);
    let mut p1 = world.proc(1);
    sim.spawn("rank0", move |ctx| {
        let comm = p0.comm_world();
        p0.send(ctx, &comm, 1, 3, &payload2).unwrap();
    });
    sim.spawn("rank1", move |ctx| {
        let comm = p1.comm_world();
        let (st, m) = p1.recv(ctx, &comm, Some(0), Some(3)).unwrap();
        assert_eq!(st.len, expected.len());
        assert_eq!(m, expected);
    });
    finish(sim);
}

#[test]
fn isend_irecv_overlap() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 2);
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        let peer = 1 - mpi.rank();
        let r = mpi.irecv(ctx, &comm, Some(peer), Some(1)).unwrap();
        let s = mpi.isend(ctx, &comm, peer, 1, &[mpi.rank() as u8]).unwrap();
        mpi.wait_send(ctx, s);
        let (_, m) = mpi.wait_recv(ctx, &comm, r);
        assert_eq!(m, vec![peer as u8]);
    });
    finish(sim);
}

#[test]
fn sendrecv_exchanges_without_deadlock() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 4);
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        let right = (mpi.rank() + 1) % 4;
        let left = (mpi.rank() + 3) % 4;
        let (st, m) = mpi
            .sendrecv(
                ctx,
                &comm,
                right,
                9,
                &[mpi.rank() as u8],
                Some(left),
                Some(9),
            )
            .unwrap();
        assert_eq!(st.source, left);
        assert_eq!(m, vec![left as u8]);
    });
    finish(sim);
}

#[test]
fn bcast_native_and_p2p_agree() {
    for coll in [CollectiveImpl::Native, CollectiveImpl::PointToPoint] {
        let mut sim = Simulation::new();
        let mut world = MpiWorld::scramnet(&sim.handle(), 4);
        world.set_collectives(coll);
        run_world(&world, &mut sim, |mpi, ctx| {
            let comm = mpi.comm_world();
            for root in 0..4 {
                let data = if mpi.rank() == root {
                    Some(vec![root as u8; 33])
                } else {
                    None
                };
                let out = mpi.bcast(ctx, &comm, root, data.as_deref());
                assert_eq!(out, vec![root as u8; 33]);
            }
        });
        finish(sim);
    }
}

#[test]
fn barrier_actually_synchronizes() {
    for coll in [CollectiveImpl::Native, CollectiveImpl::PointToPoint] {
        let mut sim = Simulation::new();
        let mut world = MpiWorld::scramnet(&sim.handle(), 4);
        world.set_collectives(coll);
        let entered = Arc::new(Mutex::new(Vec::new()));
        let exited = Arc::new(Mutex::new(Vec::new()));
        for rank in 0..4 {
            let mut mpi = world.proc(rank);
            let entered = Arc::clone(&entered);
            let exited = Arc::clone(&exited);
            sim.spawn(format!("rank{rank}"), move |ctx| {
                let comm = mpi.comm_world();
                // Stagger arrivals.
                ctx.wait_until(des::us(50 * rank as u64));
                entered.lock().push(ctx.now());
                mpi.barrier(ctx, &comm);
                exited.lock().push(ctx.now());
            });
        }
        finish(sim);
        let max_enter = *entered.lock().iter().max().unwrap();
        let min_exit = *exited.lock().iter().min().unwrap();
        assert!(
            min_exit >= max_enter,
            "{coll:?}: someone left ({}) before the last arrival ({})",
            min_exit.pretty(),
            max_enter.pretty()
        );
    }
}

#[test]
fn reduce_and_allreduce_are_correct() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 4);
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        let mine = vec![mpi.rank() as f64, 1.0, -(mpi.rank() as f64)];
        let summed = mpi.reduce(ctx, &comm, 2, ReduceOp::Sum, &mine);
        if mpi.rank() == 2 {
            assert_eq!(summed.unwrap(), vec![6.0, 4.0, -6.0]);
        } else {
            assert!(summed.is_none());
        }
        let all = mpi.allreduce(ctx, &comm, ReduceOp::Max, &mine);
        assert_eq!(all, vec![3.0, 1.0, 0.0]);
    });
    finish(sim);
}

#[test]
fn gather_scatter_allgather_alltoall() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 4);
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        let r = mpi.rank();
        // Gather to 1.
        let g = mpi.gather(ctx, &comm, 1, &vec![r as u8; r + 1]);
        if r == 1 {
            let g = g.unwrap();
            for (i, block) in g.iter().enumerate() {
                assert_eq!(block, &vec![i as u8; i + 1]);
            }
        }
        // Scatter from 3.
        let blocks: Option<Vec<Vec<u8>>> =
            (r == 3).then(|| (0..4).map(|i| vec![i as u8 * 2; 3]).collect());
        let part = mpi.scatter(ctx, &comm, 3, blocks.as_deref());
        assert_eq!(part, vec![r as u8 * 2; 3]);
        // Allgather.
        let all = mpi.allgather(ctx, &comm, &[r as u8]);
        assert_eq!(all, vec![vec![0], vec![1], vec![2], vec![3]]);
        // Alltoall: send rank-stamped blocks.
        let outgoing: Vec<Vec<u8>> = (0..4).map(|d| vec![(r * 10 + d) as u8]).collect();
        let incoming = mpi.alltoall(ctx, &comm, &outgoing);
        for s in 0..4 {
            assert_eq!(incoming[s], vec![(s * 10 + r) as u8]);
        }
    });
    finish(sim);
}

#[test]
fn comm_split_creates_working_subcommunicators() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 4);
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        // Even/odd split, reverse key order inside each group.
        let color = (mpi.rank() % 2) as i64;
        let key = -(mpi.rank() as i64);
        let sub = mpi.comm_split(ctx, &comm, color, key).unwrap();
        assert_eq!(sub.size(), 2);
        // Reverse key: higher world rank sits at sub rank 0.
        let expect_me = usize::from(mpi.rank() < 2);
        assert_eq!(sub.rank(), expect_me);
        // Collectives inside the sub-communicator.
        let sum = mpi.allreduce(ctx, &sub, ReduceOp::Sum, &[mpi.rank() as f64]);
        let expected = if color == 0 { 2.0 } else { 4.0 };
        assert_eq!(sum, vec![expected]);
        // Point-to-point inside the sub-communicator.
        let peer = 1 - sub.rank();
        let (_, m) = mpi
            .sendrecv(ctx, &sub, peer, 4, &[sub.rank() as u8], Some(peer), Some(4))
            .unwrap();
        assert_eq!(m, vec![peer as u8]);
    });
    finish(sim);
}

#[test]
fn undefined_color_returns_none_but_participates() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 4);
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        let color = if mpi.rank() == 0 { -1 } else { 1 };
        let sub = mpi.comm_split(ctx, &comm, color, 0);
        if mpi.rank() == 0 {
            assert!(sub.is_none());
        } else {
            let sub = sub.unwrap();
            assert_eq!(sub.size(), 3);
            mpi.barrier(ctx, &sub);
        }
    });
    finish(sim);
}

#[test]
fn bad_ranks_are_rejected() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 2);
    let mut mpi = world.proc(0);
    sim.spawn("rank0", move |ctx| {
        let comm = mpi.comm_world();
        assert!(mpi.send(ctx, &comm, 5, 0, b"x").is_err());
        assert!(mpi.recv(ctx, &comm, Some(9), None).is_err());
    });
    finish(sim);
}

#[test]
fn mpi_headline_latency_is_calibrated() {
    // Paper §5: 0-byte MPI one-way ≈44 µs, 4-byte ≈49 µs over SCRAMNet.
    // We accept ±15% and record exact values in EXPERIMENTS.md.
    let one_way = |len: usize| {
        let mut sim = Simulation::new();
        let world = MpiWorld::scramnet(&sim.handle(), 2);
        let done = Arc::new(Mutex::new(0u64));
        let done2 = Arc::clone(&done);
        let payload = vec![0u8; len];
        let mut p0 = world.proc(0);
        let mut p1 = world.proc(1);
        sim.spawn("rank0", move |ctx| {
            let comm = p0.comm_world();
            p0.send(ctx, &comm, 1, 0, &payload).unwrap();
        });
        sim.spawn("rank1", move |ctx| {
            let comm = p1.comm_world();
            let _ = p1.recv(ctx, &comm, Some(0), Some(0)).unwrap();
            *done2.lock() = ctx.now();
        });
        sim.run();
        let t = *done.lock();
        t.as_us()
    };
    let zero = one_way(0);
    let four = one_way(4);
    assert!(
        (zero - 44.0).abs() < 7.0,
        "0-byte MPI one-way {zero:.1} µs, want ≈44"
    );
    assert!(
        (four - 49.0).abs() < 8.0,
        "4-byte MPI one-way {four:.1} µs, want ≈49"
    );
    assert!(four > zero);
}

#[test]
fn probe_reports_without_consuming() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 2);
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        if mpi.rank() == 0 {
            mpi.send(ctx, &comm, 1, 42, b"probed").unwrap();
        } else {
            // Nothing probed from a tag that was never sent.
            assert!(mpi.iprobe(ctx, &comm, Some(0), Some(99)).unwrap().is_none());
            let st = mpi.probe(ctx, &comm, Some(0), Some(42)).unwrap();
            assert_eq!(st.source, 0);
            assert_eq!(st.tag, 42);
            assert_eq!(st.len, 6);
            // Probe twice: still there.
            let st2 = mpi.probe(ctx, &comm, None, None).unwrap();
            assert_eq!(st2, st);
            let (_, m) = mpi.recv(ctx, &comm, Some(0), Some(42)).unwrap();
            assert_eq!(m, b"probed");
            assert!(mpi.iprobe(ctx, &comm, Some(0), Some(42)).unwrap().is_none());
        }
    });
    finish(sim);
}

#[test]
fn waitany_returns_first_completion() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 3);
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        match mpi.rank() {
            0 => {
                let r1 = mpi.irecv(ctx, &comm, Some(1), Some(1)).unwrap();
                let r2 = mpi.irecv(ctx, &comm, Some(2), Some(2)).unwrap();
                let (idx, st, m) = mpi.waitany_recv(ctx, &comm, &[r1, r2]);
                // Rank 2 sends immediately; rank 1 sends late.
                assert_eq!(idx, 1);
                assert_eq!(st.source, 2);
                assert_eq!(m, b"fast");
                let (idx2, _, m2) = mpi.waitany_recv(ctx, &comm, &[r1, r2]);
                assert_eq!(idx2, 0);
                assert_eq!(m2, b"slow");
            }
            1 => {
                ctx.wait_until(des::ms(2));
                mpi.send(ctx, &comm, 0, 1, b"slow").unwrap();
            }
            2 => {
                mpi.send(ctx, &comm, 0, 2, b"fast").unwrap();
            }
            _ => unreachable!(),
        }
    });
    finish(sim);
}

#[test]
fn scan_computes_inclusive_prefixes() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 4);
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        let mine = vec![mpi.rank() as f64 + 1.0, 1.0];
        let prefix = mpi.scan(ctx, &comm, ReduceOp::Sum, &mine);
        let r = mpi.rank() as f64;
        assert_eq!(
            prefix[0],
            (r + 1.0) * (r + 2.0) / 2.0,
            "rank {}",
            mpi.rank()
        );
        assert_eq!(prefix[1], r + 1.0);
        let p = mpi.scan(ctx, &comm, ReduceOp::Prod, &[2.0]);
        assert_eq!(p, vec![2f64.powi(mpi.rank() as i32 + 1)]);
    });
    finish(sim);
}

#[test]
fn comm_dup_isolates_traffic() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 2);
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        let dup = mpi.comm_dup(ctx, &comm);
        assert_eq!(dup.size(), comm.size());
        assert_eq!(dup.rank(), comm.rank());
        if mpi.rank() == 0 {
            // Same tag on both communicators: contexts keep them apart.
            mpi.send(ctx, &dup, 1, 7, b"on dup").unwrap();
            mpi.send(ctx, &comm, 1, 7, b"on world").unwrap();
        } else {
            // Receive in the opposite order of sending: context matching
            // must route each message to the right communicator.
            let (_, w) = mpi.recv(ctx, &comm, Some(0), Some(7)).unwrap();
            assert_eq!(w, b"on world");
            let (_, d) = mpi.recv(ctx, &dup, Some(0), Some(7)).unwrap();
            assert_eq!(d, b"on dup");
        }
        mpi.barrier(ctx, &dup);
    });
    finish(sim);
}

#[test]
fn rendezvous_chunks_through_small_partitions() {
    // A 40 KiB message over a device whose max frame is ~16 KiB: the ADI
    // must segment the rendezvous data and reassemble it exactly.
    let mut sim = Simulation::new();
    let mut cfg = bbp::BbpConfig::for_nodes(2);
    cfg.data_words = 4096; // 16 KiB partitions (frame limit ~16 KiB)
    let world = MpiWorld::scramnet_with(
        &sim.handle(),
        cfg,
        scramnet::CostModel::default(),
        smpi::SmpiCosts::channel_interface(),
        CollectiveImpl::Native,
    );
    let payload: Vec<u8> = (0..40 * 1024).map(|i| (i % 249) as u8).collect();
    let expect = payload.clone();
    let mut p0 = world.proc(0);
    let mut p1 = world.proc(1);
    sim.spawn("rank0", move |ctx| {
        let comm = p0.comm_world();
        p0.send(ctx, &comm, 1, 9, &payload).unwrap();
    });
    sim.spawn("rank1", move |ctx| {
        let comm = p1.comm_world();
        let (st, m) = p1.recv(ctx, &comm, Some(0), Some(9)).unwrap();
        assert_eq!(st.len, expect.len());
        assert_eq!(m, expect);
    });
    finish(sim);
}

#[test]
fn oversized_native_bcast_falls_back_to_point_to_point() {
    // A broadcast too large for one BBP frame must still complete under
    // native collectives (root falls back to direct sends).
    let mut sim = Simulation::new();
    let mut cfg = bbp::BbpConfig::for_nodes(4);
    cfg.data_words = 2048; // 8 KiB partitions
    let world = MpiWorld::scramnet_with(
        &sim.handle(),
        cfg,
        scramnet::CostModel::default(),
        smpi::SmpiCosts::channel_interface(),
        CollectiveImpl::Native,
    );
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        let big = vec![0xABu8; 20 * 1024];
        let data = (mpi.rank() == 0).then_some(&big[..]);
        let out = mpi.bcast(ctx, &comm, 0, data);
        assert_eq!(out.len(), 20 * 1024);
        assert!(out.iter().all(|&b| b == 0xAB));
    });
    finish(sim);
}

#[test]
fn ssend_synchronizes_with_the_matching_receive() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 2);
    let posted_at = Arc::new(Mutex::new(0u64));
    let ssend_done_at = Arc::new(Mutex::new(0u64));
    let p1 = Arc::clone(&posted_at);
    let s1 = Arc::clone(&ssend_done_at);
    let mut tx = world.proc(0);
    let mut rx = world.proc(1);
    sim.spawn("tx", move |ctx| {
        let comm = tx.comm_world();
        tx.ssend(ctx, &comm, 1, 1, b"sync").unwrap();
        *s1.lock() = ctx.now();
    });
    sim.spawn("rx", move |ctx| {
        let comm = rx.comm_world();
        ctx.wait_until(des::ms(3)); // receiver shows up very late
        *p1.lock() = ctx.now();
        let (_, m) = rx.recv(ctx, &comm, Some(0), Some(1)).unwrap();
        assert_eq!(m, b"sync");
    });
    finish(sim);
    assert!(
        *ssend_done_at.lock() >= *posted_at.lock(),
        "ssend ({}) must not complete before the receive was posted ({})",
        *ssend_done_at.lock(),
        *posted_at.lock()
    );
}

#[test]
fn plain_send_of_small_messages_does_not_synchronize() {
    // Control for the ssend test: an eager send completes long before a
    // late receiver shows up.
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 2);
    let send_done_at = Arc::new(Mutex::new(0u64));
    let s1 = Arc::clone(&send_done_at);
    let mut tx = world.proc(0);
    let mut rx = world.proc(1);
    sim.spawn("tx", move |ctx| {
        let comm = tx.comm_world();
        tx.send(ctx, &comm, 1, 1, b"eager").unwrap();
        *s1.lock() = ctx.now();
    });
    sim.spawn("rx", move |ctx| {
        let comm = rx.comm_world();
        ctx.wait_until(des::ms(3));
        let (_, m) = rx.recv(ctx, &comm, Some(0), Some(1)).unwrap();
        assert_eq!(m, b"eager");
    });
    finish(sim);
    assert!(
        *send_done_at.lock() < des::ms(1),
        "eager send should complete immediately"
    );
}

#[test]
fn exscan_computes_exclusive_prefixes() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 4);
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        let mine = vec![mpi.rank() as f64 + 1.0];
        let prefix = mpi.exscan(ctx, &comm, ReduceOp::Sum, &mine);
        match mpi.rank() {
            0 => assert!(prefix.is_none()),
            r => {
                // Exclusive prefix of 1,2,3,4 at rank r = r*(r+1)/2.
                let want = (r * (r + 1) / 2) as f64;
                assert_eq!(prefix.unwrap(), vec![want]);
            }
        }
    });
    finish(sim);
}

#[test]
fn reduce_scatter_block_hands_each_rank_its_block() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 4);
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        // Each rank contributes [rank; 8]: two values per destination.
        let data = vec![mpi.rank() as f64; 8];
        let mine = mpi.reduce_scatter_block(ctx, &comm, ReduceOp::Sum, &data);
        // Sum over ranks of `rank` = 0+1+2+3 = 6 in every slot.
        assert_eq!(mine, vec![6.0, 6.0]);
    });
    finish(sim);
}

#[test]
fn scan_exscan_consistency() {
    // scan(r) == op(exscan(r), mine) for r > 0.
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 4);
    run_world(&world, &mut sim, |mpi, ctx| {
        let comm = mpi.comm_world();
        let mine = vec![(mpi.rank() as f64 + 1.0) * 2.0];
        let inc = mpi.scan(ctx, &comm, ReduceOp::Sum, &mine);
        let exc = mpi.exscan(ctx, &comm, ReduceOp::Sum, &mine);
        match exc {
            None => assert_eq!(inc, mine),
            Some(p) => assert_eq!(inc[0], p[0] + mine[0]),
        }
    });
    finish(sim);
}
