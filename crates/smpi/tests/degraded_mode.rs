//! ULFM-style degraded mode on a membership-enabled SCRAMNet world:
//! typed `PeerFailed` / `Revoked` errors, survivor-to-survivor traffic
//! that keeps working, cancellable collectives, and shrink recovery.

use std::sync::{Arc, Mutex};

use des::{us, Simulation, Time};
use smpi::{MpiError, MpiWorld};

const KILL_AT: Time = us(100);

/// Build a 4-rank membership world and arrange for world rank 3 to die
/// (NIC silenced, process returns) at `KILL_AT`.
fn dying_world(sim: &Simulation) -> MpiWorld {
    let world = MpiWorld::scramnet_membership(&sim.handle(), 4);
    let ring = world.bbp_cluster().expect("scramnet world").ring().clone();
    sim.handle()
        .schedule_at(KILL_AT, move |_| ring.silence_node(3));
    world
}

/// The victim's process: heartbeat until the kill instant, then vanish.
fn victim(mut mpi: smpi::Mpi) -> impl FnOnce(&mut des::ProcCtx) + Send + 'static {
    move |ctx: &mut des::ProcCtx| {
        while ctx.now() < KILL_AT {
            mpi.progress(ctx);
        }
    }
}

/// Drive progress until the local detector has moved past epoch 0.
fn await_detection(ctx: &mut des::ProcCtx, mpi: &mut smpi::Mpi) -> u32 {
    loop {
        let (epoch, _) = mpi.membership().expect("membership world");
        if epoch > 0 {
            return epoch;
        }
        mpi.progress(ctx);
    }
}

#[test]
fn dead_rank_p2p_fails_typed_while_survivors_keep_talking() {
    let mut sim = Simulation::new();
    let world = dying_world(&sim);
    sim.spawn("rank3", victim(world.proc(3)));

    let mut mpi0 = world.proc(0);
    sim.spawn("rank0", move |ctx| {
        let comm = mpi0.comm_world();
        let epoch = await_detection(ctx, &mut mpi0);
        // Talking to the corpse fails typed...
        let err = mpi0.send(ctx, &comm, 3, 7, b"anyone home?").unwrap_err();
        assert_eq!(err, MpiError::PeerFailed { rank: 3, epoch });
        let err = mpi0.irecv(ctx, &comm, Some(3), None).unwrap_err();
        assert_eq!(err, MpiError::PeerFailed { rank: 3, epoch });
        // ...but the world communicator still carries survivor traffic
        // (ULFM: operations not involving the failed process complete).
        mpi0.send(ctx, &comm, 1, 7, b"still here").unwrap();
    });

    let mut mpi1 = world.proc(1);
    sim.spawn("rank1", move |ctx| {
        let comm = mpi1.comm_world();
        await_detection(ctx, &mut mpi1);
        let (st, data) = mpi1.recv(ctx, &comm, Some(0), None).unwrap();
        assert_eq!(st.source, 0);
        assert_eq!(data, b"still here");
    });

    let mut mpi2 = world.proc(2);
    sim.spawn("rank2", move |ctx| {
        let epoch = await_detection(ctx, &mut mpi2);
        let comm = mpi2.comm_world();
        // A probe aimed at the dead rank reports the failure too.
        let err = mpi2.iprobe(ctx, &comm, Some(3), None).unwrap_err();
        assert_eq!(err, MpiError::PeerFailed { rank: 3, epoch });
    });

    assert!(sim.run().is_clean());
}

#[test]
fn collective_entered_before_detection_fails_typed_for_every_live_caller() {
    let mut sim = Simulation::new();
    let world = dying_world(&sim);
    sim.spawn("rank3", victim(world.proc(3)));

    let errors: Arc<Mutex<Vec<(usize, MpiError)>>> = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..3 {
        let mut mpi = world.proc(rank);
        let errors = Arc::clone(&errors);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let comm = mpi.comm_world();
            // Enter the barrier while the detector still believes the
            // whole world is alive: the entry check passes and every
            // survivor blocks inside the coordinator algorithm waiting
            // for rank 3, which will never arrive.
            ctx.wait_until(us(120));
            assert_eq!(mpi.membership().unwrap().0, 0, "entered before detection");
            let err = mpi.try_barrier(ctx, &comm).unwrap_err();
            errors.lock().unwrap().push((rank, err));
        });
    }

    assert!(sim.run().is_clean());
    // The one-epoch guarantee: every live caller got the same typed
    // failure instead of hanging.
    let errors = errors.lock().unwrap();
    assert_eq!(errors.len(), 3);
    for (_, err) in errors.iter() {
        assert_eq!(*err, MpiError::PeerFailed { rank: 3, epoch: 1 });
    }
}

#[test]
fn revoke_interrupts_survivors_and_shrink_rebuilds_the_world() {
    let mut sim = Simulation::new();
    let world = dying_world(&sim);
    sim.spawn("rank3", victim(world.proc(3)));

    let final_epochs: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));

    // Rank 0 notices the failure first-hand and revokes the world.
    let mut mpi0 = world.proc(0);
    let epochs0 = Arc::clone(&final_epochs);
    sim.spawn("rank0", move |ctx| {
        let comm = mpi0.comm_world();
        await_detection(ctx, &mut mpi0);
        mpi0.revoke(ctx, &comm);
        // Revocation is sticky locally as well.
        let err = mpi0.send(ctx, &comm, 1, 7, b"too late").unwrap_err();
        assert!(matches!(err, MpiError::Revoked { .. }));
        recover(ctx, &mut mpi0, 0, &epochs0);
    });

    // Ranks 1 and 2 learn about the revocation from rank 0's notice.
    for rank in [1usize, 2] {
        let mut mpi = world.proc(rank);
        let epochs = Arc::clone(&final_epochs);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let comm = mpi.comm_world();
            loop {
                match mpi.iprobe(ctx, &comm, None, None) {
                    Err(MpiError::Revoked { .. }) => break,
                    Err(e) => panic!("unexpected error while polling: {e}"),
                    Ok(_) => mpi.progress(ctx),
                }
            }
            recover(ctx, &mut mpi, rank, &epochs);
        });
    }

    fn recover(
        ctx: &mut des::ProcCtx,
        mpi: &mut smpi::Mpi,
        old_rank: usize,
        epochs: &Mutex<Vec<u32>>,
    ) {
        let comm = mpi.comm_world();
        let shrunk = mpi.shrink(ctx, &comm).expect("survivors shrink");
        // Dense re-ranking: world ranks 0,1,2 keep their order.
        assert_eq!(shrunk.size(), 3);
        assert_eq!(shrunk.rank(), old_rank);
        // The shrunken world runs collectives and p2p like a newborn comm.
        let data = (shrunk.rank() == 0).then_some(&b"regrouped"[..]);
        let out = mpi.try_bcast(ctx, &shrunk, 0, data).expect("bcast works");
        assert_eq!(out, b"regrouped");
        match shrunk.rank() {
            1 => mpi.send(ctx, &shrunk, 2, 9, b"ping").unwrap(),
            2 => {
                let (st, data) = mpi.recv(ctx, &shrunk, Some(1), Some(9)).unwrap();
                assert_eq!((st.source, data.as_slice()), (1, &b"ping"[..]));
            }
            _ => {}
        }
        mpi.try_barrier(ctx, &shrunk).expect("shrunken barrier");
        epochs.lock().unwrap().push(mpi.membership().unwrap().0);
    }

    assert!(sim.run().is_clean());
    let epochs = final_epochs.lock().unwrap();
    assert_eq!(epochs.len(), 3);
    assert!(epochs.iter().all(|&e| e == epochs[0] && e > 0));
}

#[test]
fn detectorless_worlds_treat_degraded_calls_as_plain_ones() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 2);
    for rank in 0..2 {
        let mut mpi = world.proc(rank);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            assert!(mpi.membership().is_none());
            let comm = mpi.comm_world();
            mpi.try_barrier(ctx, &comm).expect("plain barrier");
            let data = (rank == 0).then_some(&b"hi"[..]);
            assert_eq!(mpi.try_bcast(ctx, &comm, 0, data).unwrap(), b"hi");
            // Shrink of a healthy detector-less world is the identity.
            let same = mpi.shrink(ctx, &comm).unwrap();
            assert_eq!(same.size(), 2);
            mpi.barrier(ctx, &same);
        });
    }
    assert!(sim.run().is_clean());
}
