//! Deterministic unexpected-queue floods over a 2-rank SCRAMNet world.
//!
//! A flooder blasts tagged sends at a receiver that has posted nothing:
//! every message must park in the ADI unexpected queue (residency rises
//! to exactly the flood size), then fully drain to zero once the
//! receives post — bit-exact payloads, for both the eager protocol
//! (whole messages park) and the rendezvous protocol (RTS announcements
//! park). Runs on the sequential engine only: the MPI stack lives in
//! process closures, which the sharded parallel engine does not host
//! (ROADMAP item 2 tracks process support for `ParRing`), so "where
//! supported" is — today — the sequential engine.

use std::sync::Arc;

use des::{ms, Simulation, Time};
use parking_lot::Mutex;
use smpi::{CollectiveImpl, MpiWorld, SmpiCosts};

/// What one flood run observed at the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FloodTrace {
    /// Unexpected-queue high-water mark while nothing was posted.
    peak: usize,
    /// Queue length right before the receives post (everything parked).
    parked: usize,
    /// Queue length after every receive completed.
    drained: usize,
    /// Messages whose payload survived bit-exact.
    intact: usize,
    /// Virtual time the receiver finished, ns (determinism witness).
    done_at: Time,
}

fn flood_payload(i: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|b| ((i * 131 + b * 7 + 3) % 251) as u8)
        .collect()
}

/// Flood `messages` sends of `len` bytes each at an unsuspecting
/// receiver; post the receives only at `post_at`.
fn run_flood(messages: usize, len: usize, post_at: Time) -> FloodTrace {
    let mut sim = Simulation::new();
    let mut cfg = bbp::BbpConfig::for_nodes(2);
    cfg.data_words = 16 * 1024; // 64 KiB partition: fits rendezvous chunks
    let world = MpiWorld::scramnet_with(
        &sim.handle(),
        cfg,
        scramnet::CostModel::default(),
        SmpiCosts::adi_direct(),
        CollectiveImpl::PointToPoint,
    );

    let mut sender = world.proc(0);
    sim.spawn("flooder", move |ctx| {
        let comm = sender.comm_world();
        // isend so rendezvous-sized messages all announce before any
        // CTS can come back; eager-sized ones complete on the spot.
        let reqs: Vec<_> = (0..messages)
            .map(|i| {
                sender
                    .isend(ctx, &comm, 1, i as smpi::Tag, &flood_payload(i, len))
                    .expect("flood isend failed")
            })
            .collect();
        for r in reqs {
            sender.wait_send(ctx, r);
        }
    });

    let trace_out: Arc<Mutex<Option<FloodTrace>>> = Arc::new(Mutex::new(None));
    let trace = Arc::clone(&trace_out);
    let mut receiver = world.proc(1);
    sim.spawn("floodee", move |ctx| {
        let comm = receiver.comm_world();
        // Progress without posting: every arrival must park.
        while ctx.now() < post_at {
            receiver.progress(ctx);
        }
        let peak = receiver.adi().unexpected_peak();
        let parked = receiver.adi().unexpected_len();
        let reqs: Vec<_> = (0..messages)
            .map(|i| {
                receiver
                    .irecv(ctx, &comm, Some(0), Some(i as smpi::Tag))
                    .expect("late irecv failed")
            })
            .collect();
        let mut intact = 0;
        for (i, r) in reqs.into_iter().enumerate() {
            let (status, data) = receiver.wait_recv(ctx, &comm, r);
            if status.source == 0 && data == flood_payload(i, len) {
                intact += 1;
            }
        }
        *trace.lock() = Some(FloodTrace {
            peak,
            parked,
            drained: receiver.adi().unexpected_len(),
            intact,
            done_at: ctx.now(),
        });
    });

    let report = sim.run();
    assert!(
        report.is_clean(),
        "flood deadlocked: {:?}",
        report.deadlocked
    );
    let out = trace_out.lock().take().expect("the floodee reports");
    out
}

#[test]
fn eager_flood_parks_everything_then_drains_to_zero() {
    let t = run_flood(24, 256, ms(2));
    assert_eq!(t.peak, 24, "all 24 eager sends park unexpectedly");
    assert_eq!(t.parked, 24, "nothing matched before the receives post");
    assert_eq!(t.drained, 0, "the unexpected queue fully drains");
    assert_eq!(t.intact, 24, "every payload survives bit-exact");
}

#[test]
fn rendezvous_flood_parks_announcements_then_drains_to_zero() {
    // 24 KiB is past the 16 KiB adi_direct threshold: what parks is the
    // RTS announcement, and the data only moves after the receive posts.
    let t = run_flood(4, 24 * 1024, ms(2));
    assert_eq!(t.peak, 4, "all 4 RTS announcements park unexpectedly");
    assert_eq!(t.parked, 4);
    assert_eq!(t.drained, 0, "no announcement outlives its transfer");
    assert_eq!(t.intact, 4, "chunked rendezvous data reassembles intact");
}

#[test]
fn floods_replay_identically() {
    let a = run_flood(12, 512, ms(1));
    let b = run_flood(12, 512, ms(1));
    assert_eq!(a, b, "same flood, same virtual trace");
    assert!(
        a.done_at > ms(1),
        "the drain happens after the receives post"
    );
}

#[test]
fn interleaved_preposts_cap_the_peak() {
    // A receiver that preposts half the tags before the flood arrives
    // bounds the park depth to the unmatched half.
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 2);
    let messages = 16usize;
    let prepost = 8usize;
    let len = 128usize;

    let mut sender = world.proc(0);
    sim.spawn("flooder", move |ctx| {
        let comm = sender.comm_world();
        ctx.wait_until(ms(1) / 2);
        for i in 0..messages {
            sender
                .send(ctx, &comm, 1, i as smpi::Tag, &flood_payload(i, len))
                .expect("flood send failed");
        }
    });

    let peak_out = Arc::new(Mutex::new((0usize, 0usize)));
    let peaks = Arc::clone(&peak_out);
    let mut receiver = world.proc(1);
    sim.spawn("floodee", move |ctx| {
        let comm = receiver.comm_world();
        let early: Vec<_> = (0..prepost)
            .map(|i| {
                receiver
                    .irecv(ctx, &comm, Some(0), Some(i as smpi::Tag))
                    .expect("prepost irecv failed")
            })
            .collect();
        while ctx.now() < ms(2) {
            receiver.progress(ctx);
        }
        let peak = receiver.adi().unexpected_peak();
        let late: Vec<_> = (prepost..messages)
            .map(|i| {
                receiver
                    .irecv(ctx, &comm, Some(0), Some(i as smpi::Tag))
                    .expect("late irecv failed")
            })
            .collect();
        for (i, r) in early.into_iter().chain(late).enumerate() {
            let (_, data) = receiver.wait_recv(ctx, &comm, r);
            assert_eq!(data, flood_payload(i, len), "message {i} corrupted");
        }
        *peaks.lock() = (peak, receiver.adi().unexpected_len());
    });

    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
    let (peak, final_len) = *peak_out.lock();
    assert_eq!(peak, messages - prepost, "only unmatched sends park");
    assert_eq!(final_len, 0);
}
