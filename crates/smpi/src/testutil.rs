//! Test doubles for exercising the ADI and hybrid layers without a
//! network: a scripted device with an inspectable outbox and a
//! hand-fed inbox, both shared with the test through a probe handle.

use std::collections::VecDeque;
use std::sync::Arc;

use des::ProcCtx;
use parking_lot::Mutex;

use crate::device::{Device, DeviceError};

#[derive(Default)]
pub(crate) struct ScriptState {
    /// Every frame sent, with its destination.
    pub sent: Vec<(usize, Vec<u8>)>,
    /// Frames the test has queued for delivery (src, frame).
    pub incoming: VecDeque<(usize, Vec<u8>)>,
}

/// Shared view of a [`ScriptedDevice`]'s traffic.
#[derive(Clone)]
pub(crate) struct ScriptProbe {
    state: Arc<Mutex<ScriptState>>,
}

impl ScriptProbe {
    /// Queue a frame as if `src` had sent it.
    pub fn feed(&self, src: usize, frame: Vec<u8>) {
        self.state.lock().incoming.push_back((src, frame));
    }

    /// Snapshot of everything sent so far.
    pub fn sent(&self) -> Vec<(usize, Vec<u8>)> {
        self.state.lock().sent.clone()
    }

    /// Number of frames sent so far.
    pub fn sent_count(&self) -> usize {
        self.state.lock().sent.len()
    }
}

/// An in-memory device: sends are recorded, receives are fed by tests.
pub(crate) struct ScriptedDevice {
    rank: usize,
    n: usize,
    state: Arc<Mutex<ScriptState>>,
    /// Frame-size limit reported through [`Device::max_frame`].
    pub max_frame: Option<usize>,
    /// Whether multicast reports success.
    pub mcast_ok: bool,
    /// When set, every send/mcast fails with this error (nothing is
    /// recorded as sent).
    pub fail_sends: Option<DeviceError>,
}

impl ScriptedDevice {
    pub fn new(rank: usize, n: usize) -> (Self, ScriptProbe) {
        let state = Arc::new(Mutex::new(ScriptState::default()));
        let probe = ScriptProbe {
            state: Arc::clone(&state),
        };
        (
            ScriptedDevice {
                rank,
                n,
                state,
                max_frame: None,
                mcast_ok: true,
                fail_sends: None,
            },
            probe,
        )
    }
}

impl Device for ScriptedDevice {
    fn rank(&self) -> usize {
        self.rank
    }

    fn nprocs(&self) -> usize {
        self.n
    }

    fn send_frame(
        &mut self,
        _ctx: &mut ProcCtx,
        dst: usize,
        frame: &[u8],
    ) -> Result<(), DeviceError> {
        if let Some(e) = self.fail_sends {
            return Err(e);
        }
        self.state.lock().sent.push((dst, frame.to_vec()));
        Ok(())
    }

    fn try_recv_frame(&mut self, _ctx: &mut ProcCtx) -> Option<(usize, Vec<u8>)> {
        self.state.lock().incoming.pop_front()
    }

    fn mcast_frame(
        &mut self,
        _ctx: &mut ProcCtx,
        targets: &[usize],
        frame: &[u8],
    ) -> Result<bool, DeviceError> {
        if !self.mcast_ok {
            return Ok(false);
        }
        if let Some(e) = self.fail_sends {
            return Err(e);
        }
        let mut s = self.state.lock();
        for &t in targets {
            s.sent.push((t, frame.to_vec()));
        }
        Ok(true)
    }

    fn has_native_mcast(&self) -> bool {
        self.mcast_ok
    }

    fn max_frame(&self) -> Option<usize> {
        self.max_frame
    }
}

/// Run `f` inside a one-process simulation (most ADI unit tests need a
/// `ProcCtx` but no real time structure).
pub(crate) fn with_ctx(f: impl FnOnce(&mut ProcCtx) + Send + 'static) {
    let mut sim = des::Simulation::new();
    sim.spawn("t", f);
    assert!(sim.run().is_clean());
}
