//! Collective operations: stock MPICH point-to-point algorithms, plus the
//! paper's native SCRAMNet-multicast implementations of broadcast and
//! barrier (§4).

use des::ProcCtx;

use crate::mpi::{Comm, Mpi};
use crate::types::{ReduceOp, Tag};

/// Which collective algorithms a communicator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectiveImpl {
    /// Binomial-tree broadcast, gather+release barrier — what MPICH runs
    /// on any device.
    PointToPoint,
    /// The paper's algorithms over `bbp_Mcast`: single-step broadcast and
    /// coordinator barrier. Falls back to `PointToPoint` on devices
    /// without hardware multicast.
    #[default]
    Native,
}

// Reserved tags (all above MAX_USER_TAG), used inside the collective
// context so they can never collide with application traffic.
const TAG_BCAST: Tag = 0xF000_0001;
const TAG_BARRIER_UP: Tag = 0xF000_0002;
const TAG_BARRIER_DOWN: Tag = 0xF000_0003;
const TAG_GATHER: Tag = 0xF000_0004;
const TAG_SCATTER: Tag = 0xF000_0005;
const TAG_REDUCE: Tag = 0xF000_0006;
const TAG_ALLTOALL: Tag = 0xF000_0007;
const TAG_SCAN: Tag = 0xF000_0008;

impl Mpi {
    fn native_collectives(&self, comm: &Comm) -> bool {
        comm.coll == CollectiveImpl::Native && self.adi.has_native_mcast()
    }

    /// Advance the barrier phase counter for a collective context,
    /// skipping the phase byte reserved for revocation notices.
    pub(crate) fn next_barrier_phase(&mut self, cctx: u16) -> u8 {
        let p = self.barrier_phase.entry(cctx).or_insert(0);
        *p = p.wrapping_add(1);
        if *p == crate::adi::REVOKE_PHASE {
            *p = 0;
        }
        *p
    }

    fn charge_collective(&self, ctx: &mut ProcCtx) {
        ctx.advance(self.adi.costs().collective_entry_ns);
    }

    // Collectives have no way to report a partial failure to the group
    // (MPI_ERR_* from a collective leaves the communicator in an
    // unspecified state), so a transport error inside one is fatal.
    fn coll_isend(
        &mut self,
        ctx: &mut ProcCtx,
        dst: usize,
        context: u16,
        tag: Tag,
        payload: &[u8],
    ) -> crate::types::ReqId {
        self.adi
            .isend(ctx, dst, context, tag, payload)
            .expect("transport failed inside a collective")
    }

    fn coll_irecv(
        &mut self,
        ctx: &mut ProcCtx,
        context: u16,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> crate::types::ReqId {
        self.adi
            .irecv(ctx, context, src, tag)
            .expect("transport failed inside a collective")
    }

    // ------------------------------------------------------------------
    // Broadcast
    // ------------------------------------------------------------------

    /// `MPI_Bcast`: the root passes `Some(data)`, everyone else `None`;
    /// all ranks return the broadcast bytes.
    pub fn bcast(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        root: usize,
        data: Option<&[u8]>,
    ) -> Vec<u8> {
        self.span_enter(ctx, "bcast");
        self.charge_collective(ctx);
        let out = if comm.size() == 1 {
            data.expect("root must supply the broadcast data").to_vec()
        } else if self.native_collectives(comm) {
            self.bcast_native(ctx, comm, root, data)
        } else {
            self.bcast_binomial(ctx, comm, root, data)
        };
        self.span_exit(ctx, "bcast");
        out
    }

    /// The paper's `MPI_Bcast`: the root determines the group and posts
    /// the message once via `bbp_Mcast`; receivers wait for the root's
    /// message. Non-synchronizing; successive broadcasts match in order
    /// thanks to the BBP's in-order delivery.
    fn bcast_native(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        root: usize,
        data: Option<&[u8]>,
    ) -> Vec<u8> {
        if comm.rank() == root {
            let data = data.expect("root must supply the broadcast data");
            let targets: Vec<usize> = (0..comm.size())
                .filter(|&r| r != root)
                .map(|r| comm.world_rank(r))
                .collect();
            if self.adi.eager_mcast_fits(data.len()) {
                self.adi
                    .mcast_eager(ctx, &targets, comm.coll_context, TAG_BCAST, data);
            } else {
                // The single-step multicast cannot segment; oversized
                // payloads go out as root-driven point-to-point sends.
                // Receivers cannot tell the difference: either way one
                // TAG_BCAST message from the root arrives.
                let reqs: Vec<_> = targets
                    .iter()
                    .map(|&t| self.coll_isend(ctx, t, comm.coll_context, TAG_BCAST, data))
                    .collect();
                for req in reqs {
                    self.adi.wait(ctx, req);
                }
            }
            data.to_vec()
        } else {
            let root_world = comm.world_rank(root);
            let req = self.coll_irecv(ctx, comm.coll_context, Some(root_world), Some(TAG_BCAST));
            let (_, bytes) = self.adi.wait(ctx, req).expect("bcast receive");
            bytes
        }
    }

    /// Stock MPICH binomial-tree broadcast over point-to-point sends.
    fn bcast_binomial(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        root: usize,
        data: Option<&[u8]>,
    ) -> Vec<u8> {
        let size = comm.size();
        let vrank = (comm.rank() + size - root) % size;
        let mut buf = data.map(|d| d.to_vec());
        // Receive from the parent.
        let mut mask = 1;
        while mask < size {
            if vrank & mask != 0 {
                let parent = (vrank - mask + root) % size;
                let req = self.coll_irecv(
                    ctx,
                    comm.coll_context,
                    Some(comm.world_rank(parent)),
                    Some(TAG_BCAST),
                );
                let (_, bytes) = self.adi.wait(ctx, req).expect("bcast receive");
                buf = Some(bytes);
                break;
            }
            mask <<= 1;
        }
        // Forward to children (waiting completions so rendezvous-sized
        // payloads finish their handshake before we leave the call).
        mask >>= 1;
        let payload = buf.expect("broadcast data must exist after the receive phase");
        let mut sends = Vec::new();
        while mask > 0 {
            if vrank + mask < size {
                let child = (vrank + mask + root) % size;
                sends.push(self.coll_isend(
                    ctx,
                    comm.world_rank(child),
                    comm.coll_context,
                    TAG_BCAST,
                    &payload,
                ));
            }
            mask >>= 1;
        }
        for req in sends {
            self.adi.wait(ctx, req);
        }
        payload
    }

    // ------------------------------------------------------------------
    // Barrier
    // ------------------------------------------------------------------

    /// `MPI_Barrier`.
    pub fn barrier(&mut self, ctx: &mut ProcCtx, comm: &Comm) {
        self.span_enter(ctx, "barrier");
        self.charge_collective(ctx);
        if comm.size() > 1 {
            if self.native_collectives(comm) {
                self.barrier_native(ctx, comm);
            } else {
                self.barrier_p2p(ctx, comm);
            }
        }
        self.span_exit(ctx, "barrier");
    }

    /// The paper's `MPI_Barrier`: rank 0 coordinates — it waits for a
    /// null message from every other process, then releases the group
    /// with a single `bbp_Mcast` null.
    fn barrier_native(&mut self, ctx: &mut ProcCtx, comm: &Comm) {
        let cctx = comm.coll_context;
        let phase = self.next_barrier_phase(cctx);
        let root_world = comm.world_rank(0);
        if comm.rank() == 0 {
            for _ in 1..comm.size() {
                self.adi.wait_null(ctx, None, cctx, phase);
            }
            let targets: Vec<usize> = (1..comm.size()).map(|r| comm.world_rank(r)).collect();
            self.adi.mcast_null(ctx, &targets, cctx, phase);
        } else {
            self.adi.send_null(ctx, root_world, cctx, phase);
            self.adi.wait_null(ctx, Some(root_world), cctx, phase);
        }
    }

    /// Stock MPICH barrier: binomial gather of empty messages into rank
    /// 0, binomial broadcast of the release.
    fn barrier_p2p(&mut self, ctx: &mut ProcCtx, comm: &Comm) {
        let size = comm.size();
        let vrank = comm.rank(); // root is always comm rank 0
                                 // Gather phase (children → parents).
        let mut mask = 1;
        while mask < size {
            if vrank & mask != 0 {
                let parent = vrank - mask;
                self.coll_isend(
                    ctx,
                    comm.world_rank(parent),
                    comm.coll_context,
                    TAG_BARRIER_UP,
                    &[],
                );
                break;
            }
            let child = vrank + mask;
            if child < size {
                let req = self.coll_irecv(
                    ctx,
                    comm.coll_context,
                    Some(comm.world_rank(child)),
                    Some(TAG_BARRIER_UP),
                );
                self.adi.wait(ctx, req);
            }
            mask <<= 1;
        }
        // Release phase: binomial broadcast of an empty message.
        let mut mask = 1;
        while mask < size {
            if vrank & mask != 0 {
                let parent = vrank - mask;
                let req = self.coll_irecv(
                    ctx,
                    comm.coll_context,
                    Some(comm.world_rank(parent)),
                    Some(TAG_BARRIER_DOWN),
                );
                self.adi.wait(ctx, req);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank & mask == 0 && vrank + mask < size {
                self.coll_isend(
                    ctx,
                    comm.world_rank(vrank + mask),
                    comm.coll_context,
                    TAG_BARRIER_DOWN,
                    &[],
                );
            }
            mask >>= 1;
        }
    }

    // ------------------------------------------------------------------
    // Degraded-mode (failure-aware) collectives
    // ------------------------------------------------------------------

    /// `MPI_Barrier` with ULFM error reporting: on a world with a
    /// failure detector it completes within the membership epoch it
    /// entered, or fails typed ([`crate::MpiError::PeerFailed`] /
    /// [`crate::MpiError::Revoked`]) for this caller. Individual
    /// callers may observe different outcomes — some complete, some
    /// raise — exactly as ULFM allows; after any caller fails, the
    /// communicator's collective context is poisoned and the group
    /// must [`Mpi::shrink`] before running another collective. On
    /// detector-less worlds this is exactly [`Mpi::barrier`].
    pub fn try_barrier(&mut self, ctx: &mut ProcCtx, comm: &Comm) -> Result<(), crate::MpiError> {
        let everyone: Vec<usize> = (0..comm.size()).collect();
        let Some((entry_epoch, _)) = self.degraded_entry(comm, &everyone)? else {
            self.barrier(ctx, comm);
            return Ok(());
        };
        self.span_enter(ctx, "barrier");
        self.charge_collective(ctx);
        let out = if comm.size() > 1 {
            self.try_barrier_native(ctx, comm, entry_epoch)
        } else {
            Ok(())
        };
        self.span_exit(ctx, "barrier");
        out
    }

    /// The coordinator barrier with cancellable waits: every blocking
    /// point polls instead, and aborts the moment the detector's epoch
    /// leaves `entry_epoch`. (Detection keeps progressing inside the
    /// poll loops because the device's progress path drives the
    /// membership engine.)
    fn try_barrier_native(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        entry_epoch: u32,
    ) -> Result<(), crate::MpiError> {
        let cctx = comm.coll_context;
        let phase = self.next_barrier_phase(cctx);
        let root_world = comm.world_rank(0);
        if comm.rank() == 0 {
            let mut gathered = 0;
            while gathered < comm.size() - 1 {
                if self.adi.poll_null(ctx, None, cctx, phase).is_some() {
                    gathered += 1;
                } else {
                    self.abort_if_epoch_moved(comm, entry_epoch)?;
                }
            }
            let targets: Vec<usize> = (1..comm.size()).map(|r| comm.world_rank(r)).collect();
            self.adi
                .try_mcast_null(ctx, &targets, cctx, phase)
                .map_err(|e| self.transport_to_mpi(comm, e))
        } else {
            self.adi
                .try_send_null(ctx, root_world, cctx, phase)
                .map_err(|e| self.transport_to_mpi(comm, e))?;
            while self
                .adi
                .poll_null(ctx, Some(root_world), cctx, phase)
                .is_none()
            {
                self.abort_if_epoch_moved(comm, entry_epoch)?;
            }
            Ok(())
        }
    }

    /// `MPI_Bcast` with ULFM error reporting (same contract as
    /// [`Mpi::try_barrier`]). The root passes `Some(data)` and gets its
    /// own bytes back on success; receivers pass `None`.
    pub fn try_bcast(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        root: usize,
        data: Option<&[u8]>,
    ) -> Result<Vec<u8>, crate::MpiError> {
        let everyone: Vec<usize> = (0..comm.size()).collect();
        let Some((entry_epoch, _)) = self.degraded_entry(comm, &everyone)? else {
            return Ok(self.bcast(ctx, comm, root, data));
        };
        self.span_enter(ctx, "bcast");
        self.charge_collective(ctx);
        let out = self.try_bcast_native(ctx, comm, root, data, entry_epoch);
        self.span_exit(ctx, "bcast");
        out
    }

    fn try_bcast_native(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        root: usize,
        data: Option<&[u8]>,
        entry_epoch: u32,
    ) -> Result<Vec<u8>, crate::MpiError> {
        if comm.size() == 1 {
            return Ok(data.expect("root must supply the broadcast data").to_vec());
        }
        if comm.rank() == root {
            let data = data.expect("root must supply the broadcast data");
            let targets: Vec<usize> = (0..comm.size())
                .filter(|&r| r != root)
                .map(|r| comm.world_rank(r))
                .collect();
            if self.adi.eager_mcast_fits(data.len()) {
                self.adi
                    .try_mcast_eager(ctx, &targets, comm.coll_context, TAG_BCAST, data)
                    .map_err(|e| self.transport_to_mpi(comm, e))?;
            } else {
                let mut reqs = Vec::with_capacity(targets.len());
                for &t in &targets {
                    reqs.push(
                        self.adi
                            .isend(ctx, t, comm.coll_context, TAG_BCAST, data)
                            .map_err(|e| self.transport_to_mpi(comm, e))?,
                    );
                }
                // Rendezvous-sized sends block on the receiver's CTS;
                // poll them cancellably so a receiver dying mid-bcast
                // fails this rank typed instead of wedging it.
                for req in reqs {
                    while !self.adi.is_complete(req) {
                        self.abort_if_epoch_moved(comm, entry_epoch)?;
                        self.adi.progress(ctx);
                    }
                    self.adi.wait(ctx, req);
                }
            }
            Ok(data.to_vec())
        } else {
            let root_world = comm.world_rank(root);
            let req = self
                .adi
                .irecv(ctx, comm.coll_context, Some(root_world), Some(TAG_BCAST))
                .map_err(|e| self.transport_to_mpi(comm, e))?;
            loop {
                if self.adi.is_complete(req) {
                    let (_, bytes) = self.adi.wait(ctx, req).expect("bcast receive");
                    return Ok(bytes);
                }
                self.abort_if_epoch_moved(comm, entry_epoch)?;
                self.adi.progress(ctx);
            }
        }
    }

    // ------------------------------------------------------------------
    // Gather / scatter families
    // ------------------------------------------------------------------

    /// `MPI_Gather` (variable block sizes allowed): root returns all
    /// blocks ordered by communicator rank; others return `None`.
    pub fn gather(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        root: usize,
        mine: &[u8],
    ) -> Option<Vec<Vec<u8>>> {
        self.span_enter(ctx, "gather");
        self.charge_collective(ctx);
        let out = if comm.rank() == root {
            let mut out: Vec<Vec<u8>> = vec![Vec::new(); comm.size()];
            out[root] = mine.to_vec();
            let reqs: Vec<_> = (0..comm.size())
                .filter(|&r| r != root)
                .map(|r| {
                    (
                        r,
                        self.coll_irecv(
                            ctx,
                            comm.coll_context,
                            Some(comm.world_rank(r)),
                            Some(TAG_GATHER),
                        ),
                    )
                })
                .collect();
            for (r, req) in reqs {
                let (_, bytes) = self.adi.wait(ctx, req).expect("gather receive");
                out[r] = bytes;
            }
            Some(out)
        } else {
            let req = self.coll_isend(
                ctx,
                comm.world_rank(root),
                comm.coll_context,
                TAG_GATHER,
                mine,
            );
            self.adi.wait(ctx, req);
            None
        };
        self.span_exit(ctx, "gather");
        out
    }

    /// `MPI_Scatter`: root supplies one block per rank; everyone returns
    /// their block.
    pub fn scatter(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        root: usize,
        blocks: Option<&[Vec<u8>]>,
    ) -> Vec<u8> {
        self.span_enter(ctx, "scatter");
        self.charge_collective(ctx);
        let out = if comm.rank() == root {
            let blocks = blocks.expect("root must supply scatter blocks");
            assert_eq!(blocks.len(), comm.size(), "one block per rank");
            let mut sends = Vec::new();
            for (r, block) in blocks.iter().enumerate() {
                if r != root {
                    sends.push(self.coll_isend(
                        ctx,
                        comm.world_rank(r),
                        comm.coll_context,
                        TAG_SCATTER,
                        block,
                    ));
                }
            }
            for req in sends {
                self.adi.wait(ctx, req);
            }
            blocks[root].clone()
        } else {
            let req = self.coll_irecv(
                ctx,
                comm.coll_context,
                Some(comm.world_rank(root)),
                Some(TAG_SCATTER),
            );
            let (_, bytes) = self.adi.wait(ctx, req).expect("scatter receive");
            bytes
        };
        self.span_exit(ctx, "scatter");
        out
    }

    /// `MPI_Allgather`: gather to rank 0 then broadcast the concatenation.
    pub fn allgather(&mut self, ctx: &mut ProcCtx, comm: &Comm, mine: &[u8]) -> Vec<Vec<u8>> {
        let gathered = self.gather(ctx, comm, 0, mine);
        let encoded = if comm.rank() == 0 {
            Some(encode_blocks(&gathered.unwrap()))
        } else {
            None
        };
        let bytes = self.bcast(ctx, comm, 0, encoded.as_deref());
        decode_blocks(&bytes)
    }

    /// `MPI_Alltoall` (variable block sizes): `blocks[r]` goes to rank
    /// `r`; returns the blocks received, indexed by source rank.
    pub fn alltoall(&mut self, ctx: &mut ProcCtx, comm: &Comm, blocks: &[Vec<u8>]) -> Vec<Vec<u8>> {
        self.span_enter(ctx, "alltoall");
        self.charge_collective(ctx);
        assert_eq!(blocks.len(), comm.size(), "one block per destination");
        let me = comm.rank();
        let rreqs: Vec<_> = (0..comm.size())
            .filter(|&r| r != me)
            .map(|r| {
                (
                    r,
                    self.coll_irecv(
                        ctx,
                        comm.coll_context,
                        Some(comm.world_rank(r)),
                        Some(TAG_ALLTOALL),
                    ),
                )
            })
            .collect();
        let mut sends = Vec::new();
        for (r, block) in blocks.iter().enumerate() {
            if r != me {
                sends.push(self.coll_isend(
                    ctx,
                    comm.world_rank(r),
                    comm.coll_context,
                    TAG_ALLTOALL,
                    block,
                ));
            }
        }
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); comm.size()];
        out[me] = blocks[me].clone();
        for (r, req) in rreqs {
            let (_, bytes) = self.adi.wait(ctx, req).expect("alltoall receive");
            out[r] = bytes;
        }
        for req in sends {
            self.adi.wait(ctx, req);
        }
        self.span_exit(ctx, "alltoall");
        out
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// `MPI_Reduce` over `f64` vectors: root returns the folded vector.
    pub fn reduce(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        root: usize,
        op: ReduceOp,
        data: &[f64],
    ) -> Option<Vec<f64>> {
        self.span_enter(ctx, "reduce");
        self.charge_collective(ctx);
        let out = (|| {
            let size = comm.size();
            let vrank = (comm.rank() + size - root) % size;
            let mut acc = data.to_vec();
            let mut mask = 1;
            while mask < size {
                if vrank & mask == 0 {
                    let peer_v = vrank | mask;
                    if peer_v < size {
                        let peer = (peer_v + root) % size;
                        let req = self.coll_irecv(
                            ctx,
                            comm.coll_context,
                            Some(comm.world_rank(peer)),
                            Some(TAG_REDUCE),
                        );
                        let (_, bytes) = self.adi.wait(ctx, req).expect("reduce receive");
                        op.fold(&mut acc, &decode_f64s(&bytes));
                    }
                } else {
                    let peer_v = vrank & !mask;
                    let peer = (peer_v + root) % size;
                    let req = self.coll_isend(
                        ctx,
                        comm.world_rank(peer),
                        comm.coll_context,
                        TAG_REDUCE,
                        &encode_f64s(&acc),
                    );
                    self.adi.wait(ctx, req);
                    return None;
                }
                mask <<= 1;
            }
            Some(acc)
        })();
        self.span_exit(ctx, "reduce");
        out
    }

    /// `MPI_Allreduce` = reduce to rank 0 + broadcast.
    pub fn allreduce(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        op: ReduceOp,
        data: &[f64],
    ) -> Vec<f64> {
        let reduced = self.reduce(ctx, comm, 0, op, data);
        let encoded = reduced.map(|v| encode_f64s(&v));
        let bytes = self.bcast(ctx, comm, 0, encoded.as_deref());
        decode_f64s(&bytes)
    }

    /// `MPI_Scan`: inclusive prefix reduction over `f64` vectors — rank
    /// `r` returns `op` folded over ranks `0..=r`. Linear pipeline (the
    /// MPICH 1.x algorithm).
    pub fn scan(&mut self, ctx: &mut ProcCtx, comm: &Comm, op: ReduceOp, data: &[f64]) -> Vec<f64> {
        self.span_enter(ctx, "scan");
        self.charge_collective(ctx);
        let me = comm.rank();
        let mut acc = data.to_vec();
        if me > 0 {
            let req = self.coll_irecv(
                ctx,
                comm.coll_context,
                Some(comm.world_rank(me - 1)),
                Some(TAG_SCAN),
            );
            let (_, bytes) = self.adi.wait(ctx, req).expect("scan receive");
            let prefix = decode_f64s(&bytes);
            let mut folded = prefix;
            op.fold(&mut folded, &acc);
            acc = folded;
        }
        if me + 1 < comm.size() {
            let req = self.coll_isend(
                ctx,
                comm.world_rank(me + 1),
                comm.coll_context,
                TAG_SCAN,
                &encode_f64s(&acc),
            );
            self.adi.wait(ctx, req);
        }
        self.span_exit(ctx, "scan");
        acc
    }

    /// `MPI_Exscan`: exclusive prefix reduction — rank `r` returns `op`
    /// folded over ranks `0..r` (`None` at rank 0, which has no prefix).
    pub fn exscan(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        op: ReduceOp,
        data: &[f64],
    ) -> Option<Vec<f64>> {
        self.charge_collective(ctx);
        let me = comm.rank();
        // Receive the running prefix from the left, forward prefix+mine
        // to the right.
        let prefix = if me > 0 {
            let req = self.coll_irecv(
                ctx,
                comm.coll_context,
                Some(comm.world_rank(me - 1)),
                Some(TAG_SCAN),
            );
            let (_, bytes) = self.adi.wait(ctx, req).expect("exscan receive");
            Some(decode_f64s(&bytes))
        } else {
            None
        };
        if me + 1 < comm.size() {
            let mut running = prefix.clone().unwrap_or_else(|| data.to_vec());
            if prefix.is_some() {
                op.fold(&mut running, data);
            }
            let req = self.coll_isend(
                ctx,
                comm.world_rank(me + 1),
                comm.coll_context,
                TAG_SCAN,
                &encode_f64s(&running),
            );
            self.adi.wait(ctx, req);
        }
        prefix
    }

    /// `MPI_Reduce_scatter_block`: elementwise-reduce `comm.size()`
    /// blocks of `block_len` values, then hand block `r` to rank `r`.
    /// Implemented as reduce-to-root + scatter, like MPICH 1.x.
    pub fn reduce_scatter_block(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        op: ReduceOp,
        data: &[f64],
    ) -> Vec<f64> {
        let n = comm.size();
        assert!(
            data.len().is_multiple_of(n),
            "data must hold one equal block per rank"
        );
        let block_len = data.len() / n;
        let reduced = self.reduce(ctx, comm, 0, op, data);
        let blocks: Option<Vec<Vec<u8>>> =
            reduced.map(|full| full.chunks(block_len).map(encode_f64s).collect());
        let mine = self.scatter(ctx, comm, 0, blocks.as_deref());
        decode_f64s(&mine)
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// `MPI_Comm_split`: group by `color` (negative = undefined, returns
    /// `None`), order by `(key, old rank)`.
    pub fn comm_split(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        color: i64,
        key: i64,
    ) -> Option<Comm> {
        // Exchange (color, key, world rank) records.
        let mut record = Vec::with_capacity(24);
        record.extend_from_slice(&color.to_le_bytes());
        record.extend_from_slice(&key.to_le_bytes());
        record.extend_from_slice(&(self.rank() as u64).to_le_bytes());
        let all = self.allgather(ctx, comm, &record);
        let mut parsed: Vec<(i64, i64, usize)> = all
            .iter()
            .map(|b| {
                (
                    i64::from_le_bytes(b[0..8].try_into().unwrap()),
                    i64::from_le_bytes(b[8..16].try_into().unwrap()),
                    u64::from_le_bytes(b[16..24].try_into().unwrap()) as usize,
                )
            })
            .collect();
        // Distinct non-negative colors, sorted, define context offsets so
        // every member computes identical context ids.
        let mut colors: Vec<i64> = parsed.iter().map(|p| p.0).filter(|&c| c >= 0).collect();
        colors.sort_unstable();
        colors.dedup();
        let base = self.next_context;
        self.next_context += 2 * colors.len() as u16;
        if color < 0 {
            return None;
        }
        let ci = colors.binary_search(&color).unwrap() as u16;
        parsed.retain(|p| p.0 == color);
        parsed.sort_by_key(|&(_, k, w)| (k, w));
        let ranks: Vec<usize> = parsed.iter().map(|p| p.2).collect();
        let me = ranks
            .iter()
            .position(|&w| w == self.rank())
            .expect("we are in our own color group");
        Some(Comm {
            context: base + 2 * ci,
            coll_context: base + 2 * ci + 1,
            ranks,
            me,
            coll: comm.coll,
        })
    }
}

/// Length-prefixed block concatenation (allgather wire format).
fn encode_blocks(blocks: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = blocks.iter().map(|b| b.len() + 4).sum();
    let mut out = Vec::with_capacity(4 + total);
    out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
    for b in blocks {
        out.extend_from_slice(&(b.len() as u32).to_le_bytes());
        out.extend_from_slice(b);
    }
    out
}

fn decode_blocks(bytes: &[u8]) -> Vec<Vec<u8>> {
    let n = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(n);
    let mut at = 4;
    for _ in 0..n {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        at += 4;
        out.push(bytes[at..at + len].to_vec());
        at += len;
    }
    out
}

/// `f64` vector wire format (reductions).
pub(crate) fn encode_f64s(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

pub(crate) fn decode_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_round_trip() {
        let blocks = vec![vec![1, 2, 3], vec![], vec![9; 100]];
        assert_eq!(decode_blocks(&encode_blocks(&blocks)), blocks);
    }

    #[test]
    fn f64s_round_trip() {
        let v = vec![0.0, -1.5, std::f64::consts::PI];
        assert_eq!(decode_f64s(&encode_f64s(&v)), v);
    }

    #[test]
    fn empty_blocks_round_trip() {
        let blocks: Vec<Vec<u8>> = vec![];
        assert_eq!(decode_blocks(&encode_blocks(&blocks)), blocks);
    }
}
