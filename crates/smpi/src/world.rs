//! World builders: wire an MPI job onto a SCRAMNet cluster or one of the
//! TCP baselines.

use bbp::{BbpCluster, BbpConfig};
use des::SimHandle;
use netsim::{MyrinetApiNet, NetSpec, TcpCosts, TcpNet};
use scramnet::{CostModel, RingConfig};

use crate::collectives::CollectiveImpl;
use crate::costs::SmpiCosts;
use crate::devices::{BbpDevice, MyrinetDevice, TcpDevice};
use crate::hybrid::HybridDevice;
use crate::mpi::Mpi;

enum Transport {
    Scramnet(BbpCluster),
    Tcp(TcpNet),
    /// SCRAMNet for latency + Myrinet for bandwidth (paper §7's hybrid
    /// cluster direction). Frames below the threshold ride the BBP.
    Hybrid {
        cluster: BbpCluster,
        myrinet: MyrinetApiNet,
        threshold: usize,
    },
}

/// A configured MPI world. Mint one [`Mpi`] per rank with
/// [`MpiWorld::proc`] and move it into that rank's simulated process.
pub struct MpiWorld {
    transport: Transport,
    nprocs: usize,
    costs: SmpiCosts,
    coll: CollectiveImpl,
    minted: parking_lot::Mutex<Vec<bool>>,
}

impl MpiWorld {
    /// MPI over the BillBoard Protocol on SCRAMNet, with the paper's
    /// defaults: Channel Interface costs, native collectives.
    pub fn scramnet(handle: &SimHandle, nprocs: usize) -> Self {
        Self::scramnet_with(
            handle,
            BbpConfig::for_nodes(nprocs),
            CostModel::default(),
            SmpiCosts::channel_interface(),
            CollectiveImpl::Native,
        )
    }

    /// [`MpiWorld::scramnet`] with the BBP's membership-and-failure-
    /// detection extension enabled: point-to-point operations to dead
    /// ranks and the `try_*` collectives report typed ULFM-style
    /// failures ([`crate::MpiError::PeerFailed`] /
    /// [`crate::MpiError::Revoked`]), and [`crate::Mpi::shrink`]
    /// rebuilds a survivor communicator after a failure.
    pub fn scramnet_membership(handle: &SimHandle, nprocs: usize) -> Self {
        Self::scramnet_with(
            handle,
            BbpConfig::membership_for_nodes(nprocs),
            CostModel::default(),
            SmpiCosts::channel_interface(),
            CollectiveImpl::Native,
        )
    }

    /// Fully parameterized SCRAMNet world (ablations).
    pub fn scramnet_with(
        handle: &SimHandle,
        config: BbpConfig,
        hw: CostModel,
        costs: SmpiCosts,
        coll: CollectiveImpl,
    ) -> Self {
        let nprocs = config.nprocs;
        let cluster = BbpCluster::with_hardware(handle, config, hw, RingConfig::default());
        MpiWorld {
            transport: Transport::Scramnet(cluster),
            nprocs,
            costs,
            coll,
            minted: parking_lot::Mutex::new(vec![false; nprocs]),
        }
    }

    /// MPICH-over-TCP on switched Fast Ethernet.
    pub fn fast_ethernet(handle: &SimHandle, nprocs: usize) -> Self {
        Self::tcp_with(
            handle,
            NetSpec::fast_ethernet(nprocs),
            TcpCosts::fast_ethernet(),
            SmpiCosts::tcp_channel(),
        )
    }

    /// MPICH-over-TCP on ATM OC-3.
    pub fn atm(handle: &SimHandle, nprocs: usize) -> Self {
        Self::tcp_with(
            handle,
            NetSpec::atm_oc3(nprocs),
            TcpCosts::atm(),
            SmpiCosts::tcp_channel(),
        )
    }

    /// MPICH-over-TCP on Myrinet.
    pub fn myrinet_tcp(handle: &SimHandle, nprocs: usize) -> Self {
        Self::tcp_with(
            handle,
            NetSpec::myrinet(nprocs),
            TcpCosts::myrinet_tcp(),
            SmpiCosts::tcp_channel(),
        )
    }

    /// The hybrid cluster of the paper's conclusion: SCRAMNet carries
    /// frames below `threshold` bytes (and all collectives), Myrinet
    /// carries the bulk. Per-pair ordering is restored by the device's
    /// resequencing sub-layer.
    pub fn hybrid(handle: &SimHandle, nprocs: usize, threshold: usize) -> Self {
        let mut cfg = BbpConfig::for_nodes(nprocs);
        cfg.data_words = 16 * 1024;
        let cluster =
            BbpCluster::with_hardware(handle, cfg, CostModel::default(), RingConfig::default());
        let myrinet = MyrinetApiNet::new(handle, nprocs);
        MpiWorld {
            transport: Transport::Hybrid {
                cluster,
                myrinet,
                threshold,
            },
            nprocs,
            costs: SmpiCosts::channel_interface(),
            coll: CollectiveImpl::Native,
            minted: parking_lot::Mutex::new(vec![false; nprocs]),
        }
    }

    /// Fully parameterized TCP world. Collectives are point-to-point (no
    /// hardware multicast on these fabrics).
    pub fn tcp_with(handle: &SimHandle, spec: NetSpec, tcp: TcpCosts, costs: SmpiCosts) -> Self {
        let nprocs = spec.hosts;
        let net = TcpNet::new(handle, spec, tcp);
        MpiWorld {
            transport: Transport::Tcp(net),
            nprocs,
            costs,
            coll: CollectiveImpl::PointToPoint,
            minted: parking_lot::Mutex::new(vec![false; nprocs]),
        }
    }

    /// World size.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Override the default collective implementation for newly minted
    /// processes (per-communicator override: [`crate::Comm::with_collectives`]).
    pub fn set_collectives(&mut self, coll: CollectiveImpl) {
        self.coll = coll;
    }

    /// The SCRAMNet cluster underneath, if any (ring stats, fault
    /// injection).
    pub fn bbp_cluster(&self) -> Option<&BbpCluster> {
        match &self.transport {
            Transport::Scramnet(c) | Transport::Hybrid { cluster: c, .. } => Some(c),
            Transport::Tcp(_) => None,
        }
    }

    /// The TCP network underneath, if any (fabric stats).
    pub fn tcp_net(&self) -> Option<&TcpNet> {
        match &self.transport {
            Transport::Tcp(n) => Some(n),
            Transport::Scramnet(_) | Transport::Hybrid { .. } => None,
        }
    }

    /// The MPI library instance for `rank`.
    pub fn proc(&self, rank: usize) -> Mpi {
        assert!(rank < self.nprocs, "rank {rank} out of range");
        {
            let mut minted = self.minted.lock();
            assert!(
                !minted[rank],
                "rank {rank} was already minted: two endpoints on one BBP \
                 rank would corrupt its flag shadows"
            );
            minted[rank] = true;
        }
        match &self.transport {
            Transport::Scramnet(cluster) => {
                let dev = BbpDevice::new(cluster.endpoint(rank));
                Mpi::new(Box::new(dev), self.costs.clone(), self.coll)
            }
            Transport::Tcp(net) => {
                let socks = (0..self.nprocs)
                    .map(|p| (p != rank).then(|| net.connect(rank, p)))
                    .collect();
                Mpi::new(
                    Box::new(TcpDevice::new(rank, socks)),
                    self.costs.clone(),
                    self.coll,
                )
            }
            Transport::Hybrid {
                cluster,
                myrinet,
                threshold,
            } => {
                let fast = Box::new(BbpDevice::new(cluster.endpoint(rank)));
                let bulk = Box::new(MyrinetDevice::new(myrinet.port(rank), self.nprocs));
                let dev = HybridDevice::new(fast, bulk, *threshold);
                Mpi::new(Box::new(dev), self.costs.clone(), self.coll)
            }
        }
    }
}
