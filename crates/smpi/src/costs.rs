//! Per-layer software costs of the MPICH-style stack. Calibrated so the
//! MPI layer adds the paper's ≈37 µs constant over the raw BBP API
//! (0-byte: 6.5 µs → 44 µs; 4-byte: 7.8 µs → 49 µs).

use des::Time;

/// Calibrated per-layer costs in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct SmpiCosts {
    /// MPI binding entry + exit (argument checking, communicator lookup).
    pub binding_ns: Time,
    /// Request allocation / completion in the ADI.
    pub request_ns: Time,
    /// One posted-/unexpected-queue search or insertion.
    pub queue_ns: Time,
    /// Building the channel packet header on the send side.
    pub header_build_ns: Time,
    /// Parsing + dispatching a channel packet header on the receive side
    /// (the paper notes each layer keeps its own receive queue; this is
    /// that bookkeeping).
    pub header_parse_ns: Time,
    /// Channel packet assembly copy, per payload byte (send side).
    pub pack_ns_per_byte: f64,
    /// Channel packet disassembly copy, per payload byte (receive side).
    pub unpack_ns_per_byte: f64,
    /// One empty progress-engine iteration (checking the device with
    /// nothing pending).
    pub progress_poll_ns: Time,
    /// Collective entry overhead (group determination, §4).
    pub collective_entry_ns: Time,
    /// Channel-packet header size in bytes (MPICH's MPID packet; 64 bytes
    /// in the Channel Interface port, 24 in the ADI-direct extension).
    pub header_bytes: usize,
    /// Payload size at or above which sends switch from eager to
    /// rendezvous.
    pub rendezvous_threshold: usize,
}

impl SmpiCosts {
    /// The paper's Channel Interface port: quickest to build, heaviest
    /// per message.
    pub fn channel_interface() -> Self {
        SmpiCosts {
            binding_ns: 1_200,
            request_ns: 2_800,
            queue_ns: 2_500,
            header_build_ns: 6_500,
            header_parse_ns: 9_000,
            pack_ns_per_byte: 20.0,
            unpack_ns_per_byte: 20.0,
            progress_poll_ns: 700,
            collective_entry_ns: 1_500,
            header_bytes: 64,
            rendezvous_threshold: 16 * 1024,
        }
    }

    /// The paper's stated future work: an ADI implemented directly on the
    /// BillBoard API, removing the Channel Interface layer — smaller
    /// header, one less queue hand-off per side.
    pub fn adi_direct() -> Self {
        SmpiCosts {
            binding_ns: 1_000,
            request_ns: 2_000,
            queue_ns: 900,
            header_build_ns: 1_500,
            header_parse_ns: 2_200,
            pack_ns_per_byte: 4.0,
            unpack_ns_per_byte: 4.0,
            progress_poll_ns: 500,
            collective_entry_ns: 1_200,
            header_bytes: 24, // exactly the live fields, no union padding
            rendezvous_threshold: 16 * 1024,
        }
    }

    /// MPICH over TCP sockets (the Fast Ethernet / ATM baselines): the
    /// channel device maps straight onto `write(2)`/`read(2)`, so the MPI
    /// layer adds less than the SCRAMNet port's PIO-driven framing — but
    /// the TCP stack underneath is far slower to begin with.
    pub fn tcp_channel() -> Self {
        SmpiCosts {
            binding_ns: 1_000,
            request_ns: 2_000,
            queue_ns: 1_500,
            header_build_ns: 2_500,
            header_parse_ns: 3_500,
            pack_ns_per_byte: 5.0,
            unpack_ns_per_byte: 5.0,
            progress_poll_ns: 2_500, // select(2) across sockets
            collective_entry_ns: 1_500,
            header_bytes: 64,
            rendezvous_threshold: 16 * 1024,
        }
    }

    /// Send-side per-payload-byte cost, rounded to ns.
    pub fn pack_ns(&self, len: usize) -> Time {
        (len as f64 * self.pack_ns_per_byte).round() as Time
    }

    /// Receive-side per-payload-byte cost, rounded to ns.
    pub fn unpack_ns(&self, len: usize) -> Time {
        (len as f64 * self.unpack_ns_per_byte).round() as Time
    }
}

impl Default for SmpiCosts {
    fn default() -> Self {
        Self::channel_interface()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adi_direct_is_uniformly_cheaper() {
        let ch = SmpiCosts::channel_interface();
        let ad = SmpiCosts::adi_direct();
        assert!(ad.header_bytes < ch.header_bytes);
        assert!(ad.header_build_ns < ch.header_build_ns);
        assert!(ad.header_parse_ns < ch.header_parse_ns);
        assert!(ad.queue_ns < ch.queue_ns);
    }

    #[test]
    fn per_byte_costs_round_to_ns() {
        let c = SmpiCosts::channel_interface();
        assert_eq!(c.pack_ns(0), 0);
        assert_eq!(c.pack_ns(4), 4 * c.pack_ns_per_byte as u64);
        assert_eq!(c.unpack_ns(1000), 1000 * c.unpack_ns_per_byte as u64);
    }
}
