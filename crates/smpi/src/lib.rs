#![warn(missing_docs)]

//! # `smpi` — an MPI subset layered the way MPICH is
//!
//! The paper ports MPICH to SCRAMNet through MPICH's **Channel Interface**
//! — the narrowest, quickest-to-port device layer — and then modifies the
//! collectives to use the BillBoard Protocol's native multicast instead of
//! point-to-point trees. This crate reproduces that structure:
//!
//! ```text
//! MPI bindings           Comm::{send, recv, bcast, barrier, reduce, …}
//!   └─ ADI               posted/unexpected queues, eager + rendezvous
//!        └─ Channel Interface   packet framing (64-byte header)
//!             └─ Device         BbpDevice (SCRAMNet) | TcpDevice (FastE/ATM/Myrinet)
//! ```
//!
//! Every layer charges its calibrated software cost ([`SmpiCosts`]), which
//! is how the paper's ≈37 µs constant "MPI tax" over the raw BBP API
//! emerges (its breakdown is recorded in `EXPERIMENTS.md`).
//!
//! Collectives come in two implementations, selected per communicator
//! ([`CollectiveImpl`]):
//!
//! - **PointToPoint** — binomial-tree broadcast and gather+release
//!   barrier, exactly what stock MPICH runs on any device;
//! - **Native** — the paper's §4 algorithms: `MPI_Bcast` posts once and
//!   flags every receiver via `bbp_Mcast`; `MPI_Barrier` has rank 0
//!   collect null messages then release everyone with one multicast.
//!   Devices without hardware multicast (TCP) fall back to PointToPoint.
//!
//! ## Example
//!
//! ```
//! use des::Simulation;
//! use smpi::MpiWorld;
//!
//! let mut sim = Simulation::new();
//! let world = MpiWorld::scramnet(&sim.handle(), 4);
//! for rank in 0..4 {
//!     let mut mpi = world.proc(rank);
//!     sim.spawn(format!("rank{rank}"), move |ctx| {
//!         let comm = mpi.comm_world();
//!         let data = if mpi.rank() == 0 { Some(&b"hello"[..]) } else { None };
//!         let out = mpi.bcast(ctx, &comm, 0, data);
//!         assert_eq!(out, b"hello");
//!         mpi.barrier(ctx, &comm);
//!     });
//! }
//! assert!(sim.run().is_clean());
//! ```

mod adi;
mod collectives;
mod costs;
mod degraded;
mod device;
mod devices;
mod hybrid;
mod mpi;
#[cfg(test)]
pub(crate) mod testutil;
mod types;
mod world;

pub use adi::Adi;
pub use collectives::CollectiveImpl;
pub use costs::SmpiCosts;
pub use device::{Device, DeviceError, PacketHeader, PacketKind};
pub use devices::{BbpDevice, MyrinetDevice, TcpDevice};
pub use hybrid::HybridDevice;
pub use mpi::{Comm, Mpi};
pub use types::{MpiError, ReduceOp, ReqId, Status, Tag, ANY_SOURCE, ANY_TAG};
pub use world::MpiWorld;
