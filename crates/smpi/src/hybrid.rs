//! The hybrid device — the paper's concluding research direction made
//! concrete:
//!
//! > "We conclude that SCRAMNet has characteristics complementary to
//! > those of networks usually used in clusters. This makes SCRAMNet a
//! > good candidate for use with a high bandwidth network within the
//! > same cluster. We are working on using SCRAMNet together with other
//! > networks such as Myrinet and ATM …"
//!
//! [`HybridDevice`] composes two [`Device`]s: a low-latency *fast* path
//! (the BillBoard Protocol on SCRAMNet) and a high-bandwidth *bulk* path
//! (e.g. the native Myrinet API). Frames below a size threshold take the
//! fast path; larger frames take the bulk path.
//!
//! Splitting one logical channel across two physical networks breaks the
//! per-pair FIFO ordering MPI matching relies on (a small frame can
//! overtake an earlier large one). The device therefore runs its own
//! sequencing sub-layer: every point-to-point frame carries a per-pair
//! sequence number, and the receive side holds out-of-order arrivals in
//! a resequencing buffer until the gap closes. Multicast frames always
//! take the fast path (only SCRAMNet has hardware multicast), whose own
//! FIFO guarantee orders them; they bypass the resequencer.

use std::collections::BTreeMap;

use des::ProcCtx;

use crate::device::{Device, DeviceError};

/// First byte of a sequenced point-to-point hybrid frame.
const HYB_SEQ: u8 = 0x48;
/// First byte of an unsequenced (multicast / fast-path-only) frame.
const HYB_RAW: u8 = 0x49;
/// Wrapper header: marker byte + 4-byte little-endian sequence.
const WRAP: usize = 5;

/// A device multiplexing two underlying devices by frame size. See the
/// module docs for the ordering protocol.
pub struct HybridDevice {
    fast: Box<dyn Device>,
    bulk: Box<dyn Device>,
    /// Frames with payload length < threshold take the fast path.
    threshold: usize,
    /// Next sequence number to stamp, per destination.
    tx_seq: Vec<u32>,
    /// Next sequence number to deliver, per source.
    rx_expected: Vec<u32>,
    /// Out-of-order frames awaiting their gap, per source.
    reorder: Vec<BTreeMap<u32, Vec<u8>>>,
    /// In-order frames ready to hand up (drained before polling again).
    ready: std::collections::VecDeque<(usize, Vec<u8>)>,
}

impl HybridDevice {
    /// Compose `fast` (low latency, must agree on rank/nprocs) and
    /// `bulk` (high bandwidth). `threshold` is in frame bytes.
    pub fn new(fast: Box<dyn Device>, bulk: Box<dyn Device>, threshold: usize) -> Self {
        assert_eq!(fast.rank(), bulk.rank(), "paths must share the rank");
        assert_eq!(fast.nprocs(), bulk.nprocs(), "paths must share the world");
        if let Some(max) = fast.max_frame() {
            assert!(
                threshold + WRAP <= max,
                "threshold {threshold} exceeds the fast path's {max}-byte frame limit"
            );
        }
        let n = fast.nprocs();
        HybridDevice {
            fast,
            bulk,
            threshold,
            tx_seq: vec![0; n],
            rx_expected: vec![0; n],
            reorder: (0..n).map(|_| BTreeMap::new()).collect(),
            ready: std::collections::VecDeque::new(),
        }
    }

    /// The size threshold in force.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    fn wrap(marker: u8, seq: u32, frame: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(WRAP + frame.len());
        out.push(marker);
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(frame);
        out
    }

    /// Accept one wrapped arrival: enqueue deliverable frames onto
    /// `ready`, stash out-of-order ones.
    fn accept(&mut self, src: usize, wrapped: Vec<u8>) {
        match wrapped[0] {
            HYB_RAW => {
                self.ready.push_back((src, wrapped[WRAP..].to_vec()));
            }
            HYB_SEQ => {
                let seq = u32::from_le_bytes(wrapped[1..5].try_into().unwrap());
                let frame = wrapped[WRAP..].to_vec();
                if seq == self.rx_expected[src] {
                    self.ready.push_back((src, frame));
                    self.rx_expected[src] = self.rx_expected[src].wrapping_add(1);
                    // The gap may have closed for stashed successors.
                    while let Some(f) = self.reorder[src].remove(&self.rx_expected[src]) {
                        self.ready.push_back((src, f));
                        self.rx_expected[src] = self.rx_expected[src].wrapping_add(1);
                    }
                } else {
                    self.reorder[src].insert(seq, frame);
                }
            }
            other => panic!("corrupt hybrid frame marker {other:#x}"),
        }
    }
}

impl Device for HybridDevice {
    fn rank(&self) -> usize {
        self.fast.rank()
    }

    fn nprocs(&self) -> usize {
        self.fast.nprocs()
    }

    fn send_frame(
        &mut self,
        ctx: &mut ProcCtx,
        dst: usize,
        frame: &[u8],
    ) -> Result<(), DeviceError> {
        let seq = self.tx_seq[dst];
        self.tx_seq[dst] = seq.wrapping_add(1);
        let wrapped = Self::wrap(HYB_SEQ, seq, frame);
        if frame.len() < self.threshold {
            self.fast.send_frame(ctx, dst, &wrapped)
        } else {
            self.bulk.send_frame(ctx, dst, &wrapped)
        }
    }

    fn try_recv_frame(&mut self, ctx: &mut ProcCtx) -> Option<(usize, Vec<u8>)> {
        if let Some(out) = self.ready.pop_front() {
            return Some(out);
        }
        // Poll both paths once; latency-critical path first.
        if let Some((src, wrapped)) = self.fast.try_recv_frame(ctx) {
            self.accept(src, wrapped);
        }
        if let Some((src, wrapped)) = self.bulk.try_recv_frame(ctx) {
            self.accept(src, wrapped);
        }
        self.ready.pop_front()
    }

    fn mcast_frame(
        &mut self,
        ctx: &mut ProcCtx,
        targets: &[usize],
        frame: &[u8],
    ) -> Result<bool, DeviceError> {
        // Multicast is a fast-path exclusive; unsequenced (the fast
        // path's own FIFO orders successive multicasts per source).
        let wrapped = Self::wrap(HYB_RAW, 0, frame);
        self.fast.mcast_frame(ctx, targets, &wrapped)
    }

    fn has_native_mcast(&self) -> bool {
        self.fast.has_native_mcast()
    }

    fn max_frame(&self) -> Option<usize> {
        // Large frames ride the bulk path; account for the wrapper.
        self.bulk.max_frame().map(|m| m - WRAP)
    }

    fn membership(&self) -> Option<(u32, u32)> {
        // Only the fast path (SCRAMNet) carries a failure detector; a
        // node dead on the billboard is dead, whatever Myrinet thinks.
        self.fast.membership()
    }

    fn partitioned(&self) -> Option<u32> {
        // Same reasoning: quorum lives on the billboard's detector.
        self.fast.partitioned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::PacketHeader;

    use crate::testutil::{with_ctx, ScriptedDevice};

    fn pair() -> (Box<ScriptedDevice>, Box<ScriptedDevice>) {
        let (fast, _) = ScriptedDevice::new(0, 2);
        let (bulk, _) = ScriptedDevice::new(0, 2);
        (Box::new(fast), Box::new(bulk))
    }

    #[test]
    fn frames_route_by_size() {
        with_ctx(|ctx| {
            let (fast, bulk) = pair();
            let mut hy = HybridDevice::new(fast, bulk, 100);
            hy.send_frame(ctx, 1, &[0u8; 50]).unwrap();
            hy.send_frame(ctx, 1, &[0u8; 200]).unwrap();
            hy.send_frame(ctx, 1, &[0u8; 99]).unwrap();
            // Inspect routing by downcasting is awkward; re-wrap: count
            // via the sequencing invariant instead — sizes are disjoint.
            // (Routing itself is asserted in the world-level test.)
            assert_eq!(
                hy.tx_seq[1], 3,
                "every p2p frame consumes a sequence number"
            );
        });
    }

    #[test]
    fn resequencer_restores_order_across_paths() {
        with_ctx(|ctx| {
            let (fast, bulk) = pair();
            let mut hy = HybridDevice::new(fast, bulk, 100);
            // Simulate arrivals: seq 1 beats seq 0 (fast path overtook).
            let f0 = HybridDevice::wrap(HYB_SEQ, 0, b"first");
            let f1 = HybridDevice::wrap(HYB_SEQ, 1, b"second");
            hy.accept(1, f1);
            assert!(hy.try_recv_frame(ctx).is_none(), "gap must hold delivery");
            hy.accept(1, f0);
            let (s, a) = hy.try_recv_frame(ctx).unwrap();
            assert_eq!((s, a.as_slice()), (1, &b"first"[..]));
            let (_, b) = hy.try_recv_frame(ctx).unwrap();
            assert_eq!(b, b"second");
            assert!(hy.try_recv_frame(ctx).is_none());
        });
    }

    #[test]
    fn raw_frames_bypass_the_resequencer() {
        with_ctx(|ctx| {
            let (fast, bulk) = pair();
            let mut hy = HybridDevice::new(fast, bulk, 100);
            // A raw (multicast) frame is deliverable even though a
            // sequenced gap exists.
            hy.accept(1, HybridDevice::wrap(HYB_SEQ, 5, b"far future"));
            hy.accept(1, HybridDevice::wrap(HYB_RAW, 0, b"collective"));
            let (_, m) = hy.try_recv_frame(ctx).unwrap();
            assert_eq!(m, b"collective");
            assert!(hy.try_recv_frame(ctx).is_none());
        });
    }

    #[test]
    fn sequence_numbers_wrap_safely() {
        with_ctx(|ctx| {
            let (fast, bulk) = pair();
            let mut hy = HybridDevice::new(fast, bulk, 100);
            hy.rx_expected[1] = u32::MAX;
            hy.accept(1, HybridDevice::wrap(HYB_SEQ, u32::MAX, b"last"));
            hy.accept(1, HybridDevice::wrap(HYB_SEQ, 0, b"wrapped"));
            assert_eq!(hy.try_recv_frame(ctx).unwrap().1, b"last");
            assert_eq!(hy.try_recv_frame(ctx).unwrap().1, b"wrapped");
        });
    }

    #[test]
    fn header_survives_wrapping() {
        // The wrapper must be transparent to the channel packet format.
        let h = PacketHeader {
            kind: crate::device::PacketKind::Eager,
            src: 1,
            tag: 9,
            context: 3,
            len: 4,
            req: 0,
        };
        let frame = h.encode(64);
        let wrapped = HybridDevice::wrap(HYB_SEQ, 7, &frame);
        assert_eq!(PacketHeader::decode(&wrapped[WRAP..]), h);
    }
}
