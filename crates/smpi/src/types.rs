//! Core MPI-facing types: ranks, tags, statuses, requests, errors.

use crate::device::DeviceError;

/// Message tag. `ANY_TAG` in a receive matches any tag.
pub type Tag = u32;

/// Wildcard source for receives.
pub const ANY_SOURCE: Option<usize> = None;

/// Wildcard tag for receives.
pub const ANY_TAG: Option<Tag> = None;

/// Completion information for a receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Status {
    /// Communicator-relative rank of the sender.
    pub source: usize,
    /// The message tag.
    pub tag: Tag,
    /// Payload length in bytes.
    pub len: usize,
}

/// Handle for a non-blocking operation, returned by `isend`/`irecv` and
/// redeemed by `wait`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(pub u64);

/// Reduction operators for `reduce`/`allreduce` over `f64` vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
    /// Elementwise product.
    Prod,
}

impl ReduceOp {
    /// Apply the operator elementwise: `acc[i] = op(acc[i], x[i])`.
    pub fn fold(self, acc: &mut [f64], x: &[f64]) {
        assert_eq!(acc.len(), x.len(), "reduce length mismatch");
        match self {
            ReduceOp::Sum => acc.iter_mut().zip(x).for_each(|(a, b)| *a += b),
            ReduceOp::Min => acc.iter_mut().zip(x).for_each(|(a, b)| *a = a.min(*b)),
            ReduceOp::Max => acc.iter_mut().zip(x).for_each(|(a, b)| *a = a.max(*b)),
            ReduceOp::Prod => acc.iter_mut().zip(x).for_each(|(a, b)| *a *= b),
        }
    }
}

/// MPI-level errors. Protocol-internal failures panic (they indicate bugs
/// in the stack, not conditions an application can handle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// Destination or source rank outside the communicator.
    BadRank {
        /// The offending communicator-relative rank.
        rank: usize,
        /// Communicator size.
        size: usize,
    },
    /// An unknown request id passed to `wait`.
    BadRequest(ReqId),
    /// The transport gave up on the operation (the MPI-2 `MPI_ERR_*`
    /// class an error-handler would see): the device's reliability
    /// layer exhausted its budget.
    Transport(DeviceError),
    /// ULFM's `MPI_ERR_PROC_FAILED`: the transport's failure detector
    /// declared the peer dead, so the operation can never complete in
    /// the current membership epoch. Only produced on worlds with a
    /// membership layer ([`crate::MpiWorld::scramnet_membership`]).
    PeerFailed {
        /// Communicator-relative rank of the failed process.
        rank: usize,
        /// The membership epoch in which the failure was observed.
        epoch: u32,
    },
    /// ULFM's `MPI_ERR_REVOKED`: some member called
    /// [`crate::Mpi::revoke`] on this communicator to interrupt the
    /// group after a failure. [`crate::Mpi::shrink`] continues on the
    /// survivors.
    Revoked {
        /// The membership epoch at which the revocation was observed.
        epoch: u32,
    },
    /// This rank's network segment lost its quorum: the transport froze
    /// at its last committed membership epoch and every operation fails
    /// until the partition heals and the majority readmits the node.
    /// Only produced on worlds whose membership layer enforces quorum
    /// ([`bbp::MembershipConfig::quorum`]). Unlike [`MpiError::PeerFailed`]
    /// this is a *local* condition — no peer is known dead; this rank is
    /// the one cut off.
    Partitioned {
        /// The membership epoch the transport froze at.
        epoch: u32,
    },
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::BadRank { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            MpiError::BadRequest(id) => write!(f, "unknown request {id:?}"),
            MpiError::Transport(e) => write!(f, "transport error: {e}"),
            MpiError::PeerFailed { rank, epoch } => {
                write!(f, "rank {rank} failed (membership epoch {epoch})")
            }
            MpiError::Revoked { epoch } => {
                write!(f, "communicator revoked (membership epoch {epoch})")
            }
            MpiError::Partitioned { epoch } => {
                write!(
                    f,
                    "this rank is cut off from the quorum (frozen at membership epoch {epoch})"
                )
            }
        }
    }
}

impl std::error::Error for MpiError {}

impl From<DeviceError> for MpiError {
    fn from(e: DeviceError) -> Self {
        match e {
            DeviceError::Partitioned { epoch } => MpiError::Partitioned { epoch },
            other => MpiError::Transport(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_ops_fold_elementwise() {
        let mut acc = vec![1.0, 5.0, -2.0];
        ReduceOp::Sum.fold(&mut acc, &[1.0, 1.0, 1.0]);
        assert_eq!(acc, vec![2.0, 6.0, -1.0]);
        ReduceOp::Min.fold(&mut acc, &[0.0, 10.0, -5.0]);
        assert_eq!(acc, vec![0.0, 6.0, -5.0]);
        ReduceOp::Max.fold(&mut acc, &[3.0, 0.0, 0.0]);
        assert_eq!(acc, vec![3.0, 6.0, 0.0]);
        let mut p = vec![2.0, 3.0];
        ReduceOp::Prod.fold(&mut p, &[4.0, 0.5]);
        assert_eq!(p, vec![8.0, 1.5]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn reduce_rejects_mismatched_lengths() {
        ReduceOp::Sum.fold(&mut [1.0], &[1.0, 2.0]);
    }

    #[test]
    fn errors_render() {
        assert!(MpiError::BadRank { rank: 9, size: 4 }
            .to_string()
            .contains('9'));
        assert!(MpiError::BadRequest(ReqId(3)).to_string().contains('3'));
        let t = MpiError::from(DeviceError::PeerDown { peer: 2 });
        assert_eq!(t, MpiError::Transport(DeviceError::PeerDown { peer: 2 }));
        assert!(t.to_string().contains("transport"));
        assert!(t.to_string().contains('2'));
        let p = MpiError::from(DeviceError::Partitioned { epoch: 6 });
        assert_eq!(p, MpiError::Partitioned { epoch: 6 });
        assert!(p.to_string().contains("quorum"));
        assert!(p.to_string().contains('6'));
    }
}
