//! The Abstract Device Interface: request objects, posted-receive and
//! unexpected-message queues, the eager/rendezvous protocols, and the
//! polling progress engine.

use std::collections::{HashMap, HashSet, VecDeque};

use des::obs::{Layer, Stage};
use des::{ProcCtx, Time};

use crate::costs::SmpiCosts;
use crate::device::{
    decode_null, encode_null, Device, DeviceError, PacketHeader, PacketKind, MAGIC_CHANNEL,
};
use crate::types::{ReqId, Status, Tag};

/// Null-frame phase reserved for communicator-revocation notices
/// (degraded mode). Revocations travel on the communicator's
/// point-to-point context, where no barrier traffic ever runs, so the
/// phase byte alone discriminates them; the barrier phase counter skips
/// this value anyway for defense in depth.
pub(crate) const REVOKE_PHASE: u8 = 0xFF;

/// A posted (pending) receive.
struct Posted {
    req: ReqId,
    context: u16,
    src: Option<usize>, // world rank, None = ANY_SOURCE
    tag: Option<Tag>,   // None = ANY_TAG
}

/// A message that arrived before a matching receive was posted.
struct Unexpected {
    context: u16,
    src: usize,
    tag: Tag,
    /// Eager: the payload. Rendezvous RTS: empty until the data phase.
    payload: Vec<u8>,
    /// Full message length.
    len: usize,
    /// Sender's rendezvous request, if this is an RTS.
    rts_req: Option<u64>,
    /// Trace id of the delivered message this entry came from (0 when
    /// untraced), captured from the transport's receive side-channel at
    /// dispatch time.
    trace: u64,
    /// Virtual time this entry was parked, so a late match can report
    /// its unexpected-queue residency.
    parked_at: Time,
}

/// A rendezvous send parked until its CTS arrives.
struct PendingSend {
    dst: usize,
    payload: Vec<u8>,
}

/// The ADI engine for one rank. Owns the device.
pub struct Adi {
    dev: Box<dyn Device>,
    costs: SmpiCosts,
    posted: VecDeque<Posted>,
    unexpected: VecDeque<Unexpected>,
    /// Rendezvous sends keyed by our request id.
    rndz_sends: HashMap<u64, PendingSend>,
    /// Receives whose CTS went out, awaiting the data packet.
    rndz_recvs: HashMap<u64, ReqId>,
    /// Status metadata (source, tag, length) for in-flight rendezvous
    /// receives, keyed by our request id.
    rndz_recv_meta: HashMap<u64, (usize, Tag, usize)>,
    /// Reassembly buffers for chunked rendezvous data, keyed by our
    /// request id (per-pair FIFO makes append-order correct).
    rndz_recv_buf: HashMap<u64, Vec<u8>>,
    completed_recvs: HashMap<ReqId, (Status, Vec<u8>)>,
    completed_sends: HashSet<ReqId>,
    /// Native-collective null frames: (src world rank, context, phase).
    nulls: VecDeque<(usize, u16, u8)>,
    /// High-water mark of unexpected-queue residency (messages parked at
    /// once over the rank's lifetime) — the bound the workload campaigns
    /// assert against.
    unexpected_peak: usize,
    next_req: u64,
}

impl Adi {
    /// Build an ADI engine over `dev` with the given per-layer costs.
    pub fn new(dev: Box<dyn Device>, costs: SmpiCosts) -> Self {
        Adi {
            dev,
            costs,
            posted: VecDeque::new(),
            unexpected: VecDeque::new(),
            rndz_sends: HashMap::new(),
            rndz_recvs: HashMap::new(),
            rndz_recv_meta: HashMap::new(),
            rndz_recv_buf: HashMap::new(),
            completed_recvs: HashMap::new(),
            completed_sends: HashSet::new(),
            nulls: VecDeque::new(),
            unexpected_peak: 0,
            next_req: 1,
        }
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.dev.rank()
    }

    /// World size.
    pub fn nprocs(&self) -> usize {
        self.dev.nprocs()
    }

    /// The per-layer cost model in force.
    pub fn costs(&self) -> &SmpiCosts {
        &self.costs
    }

    /// Messages currently parked in the unexpected queue (eager payloads
    /// and rendezvous announcements awaiting a matching receive).
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }

    /// High-water mark of unexpected-queue residency over the rank's
    /// lifetime. A flood of `n` sends racing `k` preposted receives must
    /// peak at exactly `n - k` and drain back to zero once the remaining
    /// receives are posted.
    pub fn unexpected_peak(&self) -> usize {
        self.unexpected_peak
    }

    /// Borrow the underlying device.
    pub fn device(&self) -> &dyn Device {
        self.dev.as_ref()
    }

    /// Whether the device offers hardware multicast.
    pub fn has_native_mcast(&self) -> bool {
        self.dev.has_native_mcast()
    }

    /// The device's failure-detector view, `(epoch, alive_mask)`.
    /// `None` on transports without a membership layer.
    pub fn membership(&self) -> Option<(u32, u32)> {
        self.dev.membership()
    }

    /// Quorum-enforced membership: `Some(epoch)` while the transport is
    /// frozen because this node's segment lost its quorum. `None` on
    /// transports that never partition.
    pub fn partitioned(&self) -> Option<u32> {
        self.dev.partitioned()
    }

    fn fresh_req(&mut self) -> ReqId {
        let id = ReqId(self.next_req);
        self.next_req += 1;
        id
    }

    /// Observability node label for this rank.
    fn node(&self) -> u32 {
        self.dev.rank() as u32
    }

    /// Largest payload one frame can carry under this device.
    fn chunk_max(&self) -> usize {
        match self.dev.max_frame() {
            Some(max) => {
                let c = max.saturating_sub(self.costs.header_bytes);
                assert!(c > 0, "device frame limit smaller than the channel header");
                c
            }
            None => usize::MAX,
        }
    }

    /// Whether an eager multicast of `len` payload bytes fits in one
    /// frame (native broadcast cannot segment: it must post exactly
    /// once).
    pub fn eager_mcast_fits(&self, len: usize) -> bool {
        len <= self.chunk_max()
    }

    // ------------------------------------------------------------------
    // Send path
    // ------------------------------------------------------------------

    /// Start a send. Eager sends complete immediately; rendezvous sends
    /// complete once the receiver's CTS is answered with the data. `Err`
    /// means the transport gave up before the message left this node —
    /// no request is created, so there is nothing to wait on.
    pub fn isend(
        &mut self,
        ctx: &mut ProcCtx,
        dst: usize,
        context: u16,
        tag: Tag,
        payload: &[u8],
    ) -> Result<ReqId, DeviceError> {
        self.isend_mode(ctx, dst, context, tag, payload, false)
    }

    /// Start a synchronous-mode send (`MPI_Issend`): always rendezvous,
    /// so completion implies the receiver matched the message.
    pub fn issend(
        &mut self,
        ctx: &mut ProcCtx,
        dst: usize,
        context: u16,
        tag: Tag,
        payload: &[u8],
    ) -> Result<ReqId, DeviceError> {
        self.isend_mode(ctx, dst, context, tag, payload, true)
    }

    fn isend_mode(
        &mut self,
        ctx: &mut ProcCtx,
        dst: usize,
        context: u16,
        tag: Tag,
        payload: &[u8],
        synchronous: bool,
    ) -> Result<ReqId, DeviceError> {
        ctx.obs()
            .span_enter(ctx.now(), self.node(), Layer::Adi, "isend");
        ctx.advance(self.costs.request_ns);
        let req = self.fresh_req();
        let out = if !synchronous
            && payload.len() < self.costs.rendezvous_threshold
            && payload.len() <= self.chunk_max()
        {
            let header = PacketHeader {
                kind: PacketKind::Eager,
                src: self.dev.rank(),
                tag,
                context,
                len: payload.len() as u32,
                req: 0,
            };
            self.send_packet(ctx, dst, &header, payload).map(|()| {
                self.completed_sends.insert(req);
                req
            })
        } else {
            let header = PacketHeader {
                kind: PacketKind::RndzRts,
                src: self.dev.rank(),
                tag,
                context,
                len: payload.len() as u32,
                req: req.0,
            };
            self.send_packet(ctx, dst, &header, &[]).map(|()| {
                self.rndz_sends.insert(
                    req.0,
                    PendingSend {
                        dst,
                        payload: payload.to_vec(),
                    },
                );
                req
            })
        };
        ctx.obs()
            .span_exit(ctx.now(), self.node(), Layer::Adi, "isend");
        out
    }

    /// Frame assembly + device hand-off, charging the channel costs.
    fn send_packet(
        &mut self,
        ctx: &mut ProcCtx,
        dst: usize,
        header: &PacketHeader,
        payload: &[u8],
    ) -> Result<(), DeviceError> {
        ctx.obs()
            .span_enter(ctx.now(), self.node(), Layer::Channel, "packet_tx");
        ctx.advance(self.costs.header_build_ns + self.costs.pack_ns(payload.len()));
        let mut frame = header.encode(self.costs.header_bytes);
        frame.extend_from_slice(payload);
        let out = self.dev.send_frame(ctx, dst, &frame);
        ctx.obs()
            .span_exit(ctx.now(), self.node(), Layer::Channel, "packet_tx");
        out
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    /// Post a receive (checks the unexpected queue first, per MPI
    /// semantics). `Err` can only happen when the receive matches a
    /// parked rendezvous announcement and the clear-to-send reply fails;
    /// the message then stays undelivered and no request is created.
    pub fn irecv(
        &mut self,
        ctx: &mut ProcCtx,
        context: u16,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> Result<ReqId, DeviceError> {
        ctx.obs()
            .span_enter(ctx.now(), self.node(), Layer::Adi, "irecv");
        ctx.advance(self.costs.request_ns + self.costs.queue_ns);
        let req = self.fresh_req();
        let out = if let Some(idx) = self.unexpected.iter().position(|u| {
            u.context == context && src.is_none_or(|s| s == u.src) && tag.is_none_or(|t| t == u.tag)
        }) {
            // The receive was posted late: the message already sat in the
            // unexpected queue — the arrival path the paper's queue-
            // management overhead discussion is about.
            ctx.obs()
                .count(ctx.now(), self.node(), "adi.unexpected_hits", 1);
            let u = self.unexpected.remove(idx).unwrap();
            ctx.obs().gauge(
                ctx.now(),
                self.node(),
                "adi.unexpected_len",
                self.unexpected.len() as u64,
            );
            ctx.obs().lifecycle(
                ctx.now(),
                self.node(),
                u.trace,
                Stage::UnexpectedHit,
                ctx.now().saturating_sub(u.parked_at),
            );
            self.accept_matched(ctx, req, u).map(|()| req)
        } else {
            self.posted.push_back(Posted {
                req,
                context,
                src,
                tag,
            });
            Ok(req)
        };
        ctx.obs()
            .span_exit(ctx.now(), self.node(), Layer::Adi, "irecv");
        out
    }

    /// An unexpected entry just matched `req`: complete it (eager) or run
    /// the rendezvous CTS (long message).
    fn accept_matched(
        &mut self,
        ctx: &mut ProcCtx,
        req: ReqId,
        u: Unexpected,
    ) -> Result<(), DeviceError> {
        match u.rts_req {
            None => {
                ctx.advance(self.costs.unpack_ns(u.payload.len()));
                let status = Status {
                    source: u.src,
                    tag: u.tag,
                    len: u.len,
                };
                self.completed_recvs.insert(req, (status, u.payload));
            }
            Some(rts) => {
                // Long message: grant the sender a clear-to-send carrying
                // our request id; the data packet will complete `req`.
                let header = PacketHeader {
                    kind: PacketKind::RndzCts,
                    src: self.dev.rank(),
                    tag: u.tag,
                    context: u.context,
                    len: u.len as u32,
                    req: rts,
                };
                // CTS reuses the sender's req in `req` field and carries
                // ours in the payload.
                let ours = req.0.to_le_bytes();
                self.send_packet(ctx, u.src, &header, &ours)?;
                self.rndz_recvs.insert(req.0, req);
                // Remember status pieces for completion time.
                self.rndz_recv_meta.insert(req.0, (u.src, u.tag, u.len));
            }
        }
        Ok(())
    }

    /// Block until `req` completes; receives yield their payload.
    pub fn wait(&mut self, ctx: &mut ProcCtx, req: ReqId) -> Option<(Status, Vec<u8>)> {
        ctx.obs()
            .span_enter(ctx.now(), self.node(), Layer::Adi, "wait");
        loop {
            if self.completed_sends.remove(&req) {
                ctx.advance(self.costs.request_ns);
                ctx.obs()
                    .span_exit(ctx.now(), self.node(), Layer::Adi, "wait");
                return None;
            }
            if let Some(done) = self.completed_recvs.remove(&req) {
                ctx.advance(self.costs.request_ns);
                ctx.obs()
                    .span_exit(ctx.now(), self.node(), Layer::Adi, "wait");
                return Some(done);
            }
            self.progress(ctx);
        }
    }

    /// True if `req` already completed (does not progress).
    pub fn is_complete(&self, req: ReqId) -> bool {
        self.completed_sends.contains(&req) || self.completed_recvs.contains_key(&req)
    }

    /// `MPI_Iprobe` at the ADI: one progress poll, then report — without
    /// consuming — the first unexpected message matching the selector.
    /// (Posted receives would have consumed matching arrivals already,
    /// so probing only ever inspects the unexpected queue, as in MPICH.)
    pub fn iprobe(
        &mut self,
        ctx: &mut ProcCtx,
        context: u16,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> Option<Status> {
        self.progress(ctx);
        ctx.advance(self.costs.queue_ns);
        self.unexpected
            .iter()
            .find(|u| {
                u.context == context
                    && src.is_none_or(|s| s == u.src)
                    && tag.is_none_or(|t| t == u.tag)
            })
            .map(|u| Status {
                source: u.src,
                tag: u.tag,
                len: u.len,
            })
    }

    // ------------------------------------------------------------------
    // Native-collective raw frames
    // ------------------------------------------------------------------

    /// Send a one-word null frame (native barrier traffic), bypassing the
    /// whole channel packet path. Collectives have no per-operation error
    /// reporting (a half-failed barrier poisons the whole group), so a
    /// transport failure here panics.
    pub fn send_null(&mut self, ctx: &mut ProcCtx, dst: usize, context: u16, phase: u8) {
        self.dev
            .send_frame(ctx, dst, &encode_null(context, phase))
            .expect("transport failed inside a native collective");
    }

    /// Multicast a null frame. Panics if the device lacks native
    /// multicast (callers check [`Adi::has_native_mcast`]) or the
    /// transport fails.
    pub fn mcast_null(&mut self, ctx: &mut ProcCtx, targets: &[usize], context: u16, phase: u8) {
        let ok = self
            .dev
            .mcast_frame(ctx, targets, &encode_null(context, phase))
            .expect("transport failed inside a native collective");
        assert!(ok, "device has no native multicast");
    }

    /// Multicast an eager channel packet (native broadcast). Panics if
    /// unsupported.
    pub fn mcast_eager(
        &mut self,
        ctx: &mut ProcCtx,
        targets: &[usize],
        context: u16,
        tag: Tag,
        payload: &[u8],
    ) {
        self.try_mcast_eager(ctx, targets, context, tag, payload)
            .expect("transport failed inside a native collective");
    }

    /// Fallible [`Adi::mcast_eager`] for the degraded-mode collectives,
    /// which have a typed error path to hand transport failures to.
    pub(crate) fn try_mcast_eager(
        &mut self,
        ctx: &mut ProcCtx,
        targets: &[usize],
        context: u16,
        tag: Tag,
        payload: &[u8],
    ) -> Result<(), DeviceError> {
        ctx.obs()
            .span_enter(ctx.now(), self.node(), Layer::Adi, "mcast");
        ctx.advance(self.costs.header_build_ns + self.costs.pack_ns(payload.len()));
        let header = PacketHeader {
            kind: PacketKind::Eager,
            src: self.dev.rank(),
            tag,
            context,
            len: payload.len() as u32,
            req: 0,
        };
        let mut frame = header.encode(self.costs.header_bytes);
        frame.extend_from_slice(payload);
        let out = self.dev.mcast_frame(ctx, targets, &frame).map(|ok| {
            assert!(ok, "device has no native multicast");
        });
        ctx.obs()
            .span_exit(ctx.now(), self.node(), Layer::Adi, "mcast");
        out
    }

    /// Failure-tolerant null send for degraded-mode control traffic
    /// (revocation notices): a peer dying mid-notice is exactly the
    /// situation the notice is about, so transport errors are ignored.
    pub(crate) fn send_null_lossy(
        &mut self,
        ctx: &mut ProcCtx,
        dst: usize,
        context: u16,
        phase: u8,
    ) {
        let _ = self.dev.send_frame(ctx, dst, &encode_null(context, phase));
    }

    /// Fallible null send for degraded-mode collectives, which — unlike
    /// the plain ones — have a typed error path to hand failures to.
    pub(crate) fn try_send_null(
        &mut self,
        ctx: &mut ProcCtx,
        dst: usize,
        context: u16,
        phase: u8,
    ) -> Result<(), DeviceError> {
        self.dev.send_frame(ctx, dst, &encode_null(context, phase))
    }

    /// Fallible null multicast for degraded-mode collectives.
    pub(crate) fn try_mcast_null(
        &mut self,
        ctx: &mut ProcCtx,
        targets: &[usize],
        context: u16,
        phase: u8,
    ) -> Result<(), DeviceError> {
        let ok = self
            .dev
            .mcast_frame(ctx, targets, &encode_null(context, phase))?;
        assert!(ok, "device has no native multicast");
        Ok(())
    }

    /// Non-blocking [`Adi::wait_null`]: one progress poll, then dequeue
    /// a matching null frame if one is waiting.
    pub(crate) fn poll_null(
        &mut self,
        ctx: &mut ProcCtx,
        src: Option<usize>,
        context: u16,
        phase: u8,
    ) -> Option<usize> {
        self.progress(ctx);
        let idx = self
            .nulls
            .iter()
            .position(|&(s, c, p)| c == context && p == phase && src.is_none_or(|w| w == s))?;
        let (s, _, _) = self.nulls.remove(idx).unwrap();
        Some(s)
    }

    /// Remove every queued revocation notice and return the contexts
    /// they revoke (drained into [`crate::Mpi`]'s revoked set at each
    /// operation entry).
    pub(crate) fn drain_revocations(&mut self) -> Vec<u16> {
        let mut out = Vec::new();
        self.nulls.retain(|&(_, c, p)| {
            if p == REVOKE_PHASE {
                out.push(c);
                false
            } else {
                true
            }
        });
        out
    }

    /// Block until a null frame with this context and phase arrives from
    /// `src` (or from anyone, with `None`). Returns the actual source.
    pub fn wait_null(
        &mut self,
        ctx: &mut ProcCtx,
        src: Option<usize>,
        context: u16,
        phase: u8,
    ) -> usize {
        loop {
            if let Some(idx) = self
                .nulls
                .iter()
                .position(|&(s, c, p)| c == context && p == phase && src.is_none_or(|w| w == s))
            {
                let (s, _, _) = self.nulls.remove(idx).unwrap();
                return s;
            }
            self.progress(ctx);
        }
    }

    // ------------------------------------------------------------------
    // Progress engine
    // ------------------------------------------------------------------

    /// One progress iteration: poll the device, dispatch at most one
    /// frame. Advances virtual time even when idle so blocked loops make
    /// progress.
    pub fn progress(&mut self, ctx: &mut ProcCtx) {
        let Some((src, frame)) = self.dev.try_recv_frame(ctx) else {
            // Idle: block on the device's interrupt if it has one,
            // otherwise pace the polling loop.
            if !self.dev.idle_wait(ctx) {
                ctx.advance(self.costs.progress_poll_ns);
            }
            return;
        };
        if let Some((context, phase)) = decode_null(&frame) {
            // Even the one-word nulls pass through the progress engine's
            // dispatch queue (the paper: "each layer has to manage
            // received message queues").
            ctx.advance(self.costs.queue_ns);
            self.nulls.push_back((src, context, phase));
            return;
        }
        assert_eq!(
            frame[0], MAGIC_CHANNEL,
            "unknown frame type from rank {src}"
        );
        ctx.obs()
            .span_enter(ctx.now(), self.node(), Layer::Channel, "packet_rx");
        ctx.advance(self.costs.header_parse_ns);
        let header = PacketHeader::decode(&frame);
        let payload = frame[self.costs.header_bytes..].to_vec();
        match header.kind {
            PacketKind::Eager => self.dispatch_message(ctx, header, payload, None),
            PacketKind::RndzRts => {
                let rts = header.req;
                self.dispatch_message(ctx, header, Vec::new(), Some(rts));
            }
            PacketKind::RndzCts => {
                let their_req = u64::from_le_bytes(payload[..8].try_into().unwrap());
                let send = self
                    .rndz_sends
                    .remove(&header.req)
                    .expect("CTS for unknown rendezvous send");
                // Segment the data to the device's frame limit; per-pair
                // FIFO keeps the chunks in order at the receiver.
                // The data phase runs inside the progress engine, far
                // from the application call that could report an error;
                // a transport failure this deep is fatal.
                let chunk = self.chunk_max().min(send.payload.len().max(1));
                for piece in send.payload.chunks(chunk) {
                    let data_header = PacketHeader {
                        kind: PacketKind::RndzData,
                        src: self.dev.rank(),
                        tag: header.tag,
                        context: header.context,
                        len: send.payload.len() as u32,
                        req: their_req,
                    };
                    self.send_packet(ctx, send.dst, &data_header, piece)
                        .expect("transport failed during the rendezvous data phase");
                }
                if send.payload.is_empty() {
                    // Degenerate rendezvous (an application can lower the
                    // threshold to 0): one empty data frame.
                    let data_header = PacketHeader {
                        kind: PacketKind::RndzData,
                        src: self.dev.rank(),
                        tag: header.tag,
                        context: header.context,
                        len: 0,
                        req: their_req,
                    };
                    self.send_packet(ctx, send.dst, &data_header, &[])
                        .expect("transport failed during the rendezvous data phase");
                }
                self.completed_sends.insert(ReqId(header.req));
            }
            PacketKind::RndzData => {
                let (src, tag, len) = *self
                    .rndz_recv_meta
                    .get(&header.req)
                    .expect("data for unknown rendezvous receive");
                ctx.advance(self.costs.unpack_ns(payload.len()));
                let buf = self.rndz_recv_buf.entry(header.req).or_default();
                buf.extend_from_slice(&payload);
                if buf.len() >= len {
                    let data = self.rndz_recv_buf.remove(&header.req).unwrap();
                    debug_assert_eq!(data.len(), len, "rendezvous over-delivery");
                    let req = self
                        .rndz_recvs
                        .remove(&header.req)
                        .expect("completing unknown rendezvous receive");
                    self.rndz_recv_meta.remove(&header.req);
                    self.completed_recvs.insert(
                        req,
                        (
                            Status {
                                source: src,
                                tag,
                                len,
                            },
                            data,
                        ),
                    );
                }
            }
        }
        ctx.obs()
            .span_exit(ctx.now(), self.node(), Layer::Channel, "packet_rx");
    }

    /// Route an arrived message (eager payload or RTS) against the posted
    /// queue, else park it as unexpected.
    fn dispatch_message(
        &mut self,
        ctx: &mut ProcCtx,
        header: PacketHeader,
        payload: Vec<u8>,
        rts_req: Option<u64>,
    ) {
        ctx.advance(self.costs.queue_ns);
        let u = Unexpected {
            context: header.context,
            src: header.src,
            tag: header.tag,
            len: header.len as usize,
            payload,
            rts_req,
            trace: ctx.obs().current_rx(self.node()),
            parked_at: ctx.now(),
        };
        if let Some(idx) = self.posted.iter().position(|p| {
            p.context == u.context
                && p.src.is_none_or(|s| s == u.src)
                && p.tag.is_none_or(|t| t == u.tag)
        }) {
            let p = self.posted.remove(idx).unwrap();
            // Inside the progress engine there is no caller to hand the
            // error to (the CTS reply is the only send on this path).
            self.accept_matched(ctx, p.req, u)
                .expect("transport failed sending a clear-to-send during progress");
        } else {
            ctx.obs()
                .count(ctx.now(), self.node(), "adi.unexpected_parked", 1);
            ctx.obs().lifecycle(
                ctx.now(),
                self.node(),
                u.trace,
                Stage::UnexpectedPark,
                u.src as u64,
            );
            self.unexpected.push_back(u);
            self.unexpected_peak = self.unexpected_peak.max(self.unexpected.len());
            // The same depth the hand-rolled peak tracks, as a gauge
            // series — the workload campaign's flood invariants read
            // this through the health monitor.
            ctx.obs().gauge(
                ctx.now(),
                self.node(),
                "adi.unexpected_len",
                self.unexpected.len() as u64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::SmpiCosts;
    use crate::device::{PacketHeader, PacketKind};
    use crate::testutil::{with_ctx, ScriptProbe, ScriptedDevice};

    fn adi(rank: usize, n: usize) -> (Adi, ScriptProbe) {
        let (dev, probe) = ScriptedDevice::new(rank, n);
        (
            Adi::new(Box::new(dev), SmpiCosts::channel_interface()),
            probe,
        )
    }

    fn eager_frame(
        costs: &SmpiCosts,
        src: usize,
        context: u16,
        tag: Tag,
        payload: &[u8],
    ) -> Vec<u8> {
        let header = PacketHeader {
            kind: PacketKind::Eager,
            src,
            tag,
            context,
            len: payload.len() as u32,
            req: 0,
        };
        let mut f = header.encode(costs.header_bytes);
        f.extend_from_slice(payload);
        f
    }

    #[test]
    fn eager_send_is_one_frame_and_completes_immediately() {
        with_ctx(|ctx| {
            let (mut a, probe) = adi(0, 2);
            let req = a.isend(ctx, 1, 0, 5, b"hello").unwrap();
            assert!(a.is_complete(req));
            let sent = probe.sent();
            assert_eq!(sent.len(), 1);
            assert_eq!(sent[0].0, 1);
            let h = PacketHeader::decode(&sent[0].1);
            assert_eq!(h.kind, PacketKind::Eager);
            assert_eq!(h.tag, 5);
            assert_eq!(h.len, 5);
            assert_eq!(&sent[0].1[a.costs().header_bytes..], b"hello");
        });
    }

    #[test]
    fn posted_receive_matches_later_arrival() {
        with_ctx(|ctx| {
            let (mut a, probe) = adi(0, 2);
            let req = a.irecv(ctx, 0, Some(1), Some(9)).unwrap();
            assert!(!a.is_complete(req));
            let frame = eager_frame(a.costs(), 1, 0, 9, b"payload");
            probe.feed(1, frame);
            let (st, data) = a.wait(ctx, req).unwrap();
            assert_eq!(st.source, 1);
            assert_eq!(st.tag, 9);
            assert_eq!(data, b"payload");
        });
    }

    #[test]
    fn unexpected_arrival_matches_later_receive() {
        with_ctx(|ctx| {
            let (mut a, probe) = adi(0, 2);
            probe.feed(
                1,
                eager_frame(&SmpiCosts::channel_interface(), 1, 0, 3, b"early"),
            );
            a.progress(ctx); // parks it in the unexpected queue
            let req = a.irecv(ctx, 0, Some(1), Some(3)).unwrap();
            assert!(a.is_complete(req), "irecv must drain the unexpected queue");
            let (_, data) = a.wait(ctx, req).unwrap();
            assert_eq!(data, b"early");
        });
    }

    #[test]
    fn matching_respects_posting_order_for_equal_selectors() {
        with_ctx(|ctx| {
            let (mut a, probe) = adi(0, 2);
            let r1 = a.irecv(ctx, 0, Some(1), Some(7)).unwrap();
            let r2 = a.irecv(ctx, 0, Some(1), Some(7)).unwrap();
            let costs = SmpiCosts::channel_interface();
            probe.feed(1, eager_frame(&costs, 1, 0, 7, b"first"));
            probe.feed(1, eager_frame(&costs, 1, 0, 7, b"second"));
            let (_, d1) = a.wait(ctx, r1).unwrap();
            let (_, d2) = a.wait(ctx, r2).unwrap();
            assert_eq!(d1, b"first");
            assert_eq!(d2, b"second");
        });
    }

    #[test]
    fn wildcard_receive_matches_any_source_and_tag() {
        with_ctx(|ctx| {
            let (mut a, probe) = adi(0, 3);
            let req = a.irecv(ctx, 0, None, None).unwrap();
            probe.feed(
                2,
                eager_frame(&SmpiCosts::channel_interface(), 2, 0, 1234, b"w"),
            );
            let (st, _) = a.wait(ctx, req).unwrap();
            assert_eq!(st.source, 2);
            assert_eq!(st.tag, 1234);
        });
    }

    #[test]
    fn context_isolation_prevents_cross_communicator_matching() {
        with_ctx(|ctx| {
            let (mut a, probe) = adi(0, 2);
            let req = a.irecv(ctx, 5, Some(1), Some(1)).unwrap(); // context 5
            probe.feed(
                1,
                eager_frame(&SmpiCosts::channel_interface(), 1, 4, 1, b"ctx4"),
            );
            a.progress(ctx);
            assert!(!a.is_complete(req), "context 4 must not match context 5");
            probe.feed(
                1,
                eager_frame(&SmpiCosts::channel_interface(), 1, 5, 1, b"ctx5"),
            );
            let (_, data) = a.wait(ctx, req).unwrap();
            assert_eq!(data, b"ctx5");
        });
    }

    #[test]
    fn rendezvous_send_emits_rts_then_data_after_cts() {
        with_ctx(|ctx| {
            let (mut a, probe) = adi(0, 2);
            let payload = vec![7u8; 20 * 1024]; // above the 16 KiB threshold
            let req = a.isend(ctx, 1, 0, 2, &payload).unwrap();
            assert!(!a.is_complete(req), "rendezvous waits for CTS");
            let sent = probe.sent();
            assert_eq!(sent.len(), 1);
            let rts = PacketHeader::decode(&sent[0].1);
            assert_eq!(rts.kind, PacketKind::RndzRts);
            assert_eq!(rts.len as usize, payload.len());
            // Fabricate the CTS the peer would send.
            let cts_header = PacketHeader {
                kind: PacketKind::RndzCts,
                src: 1,
                tag: 2,
                context: 0,
                len: payload.len() as u32,
                req: rts.req,
            };
            let mut cts = cts_header.encode(a.costs().header_bytes);
            cts.extend_from_slice(&999u64.to_le_bytes()); // receiver's req id
            probe.feed(1, cts);
            a.progress(ctx);
            assert!(a.is_complete(req), "send completes once data flies");
            let sent = probe.sent();
            assert_eq!(sent.len(), 2, "one data frame for an unlimited device");
            let data = PacketHeader::decode(&sent[1].1);
            assert_eq!(data.kind, PacketKind::RndzData);
            assert_eq!(data.req, 999);
        });
    }

    #[test]
    fn rendezvous_data_is_chunked_to_the_frame_limit() {
        with_ctx(|ctx| {
            let (dev, probe) = ScriptedDevice::new(0, 2);
            let mut dev = dev;
            dev.max_frame = Some(4 * 1024);
            let mut a = Adi::new(Box::new(dev), SmpiCosts::channel_interface());
            let payload = vec![3u8; 20 * 1024];
            let req = a.isend(ctx, 1, 0, 2, &payload).unwrap();
            let rts = PacketHeader::decode(&probe.sent()[0].1);
            let cts_header = PacketHeader {
                kind: PacketKind::RndzCts,
                src: 1,
                tag: 2,
                context: 0,
                len: payload.len() as u32,
                req: rts.req,
            };
            let mut cts = cts_header.encode(a.costs().header_bytes);
            cts.extend_from_slice(&1u64.to_le_bytes());
            probe.feed(1, cts);
            a.progress(ctx);
            assert!(a.is_complete(req));
            // chunkature: payload per frame = 4096 - 64 header = 4032.
            let frames = probe.sent_count() - 1;
            let chunk = 4 * 1024 - a.costs().header_bytes;
            assert_eq!(frames, (20 * 1024usize).div_ceil(chunk));
        });
    }

    #[test]
    fn iprobe_reports_without_consuming() {
        with_ctx(|ctx| {
            let (mut a, probe) = adi(0, 2);
            assert!(a.iprobe(ctx, 0, Some(1), Some(8)).is_none());
            probe.feed(
                1,
                eager_frame(&SmpiCosts::channel_interface(), 1, 0, 8, b"look"),
            );
            let st = a
                .iprobe(ctx, 0, Some(1), Some(8))
                .expect("probe should see it");
            assert_eq!(st.len, 4);
            // Still there for the actual receive.
            let req = a.irecv(ctx, 0, Some(1), Some(8)).unwrap();
            let (_, data) = a.wait(ctx, req).unwrap();
            assert_eq!(data, b"look");
            assert!(a.iprobe(ctx, 0, Some(1), Some(8)).is_none());
        });
    }

    #[test]
    fn nulls_queue_separately_and_match_phase_and_context() {
        with_ctx(|ctx| {
            let (mut a, probe) = adi(0, 3);
            probe.feed(2, crate::device::encode_null(7, 1));
            probe.feed(1, crate::device::encode_null(7, 2));
            let src = a.wait_null(ctx, None, 7, 2);
            assert_eq!(src, 1, "phase 2 null is from rank 1");
            let src = a.wait_null(ctx, None, 7, 1);
            assert_eq!(src, 2);
        });
    }

    #[test]
    fn mcast_eager_uses_the_device_multicast() {
        with_ctx(|ctx| {
            let (mut a, probe) = adi(0, 4);
            a.mcast_eager(ctx, &[1, 2, 3], 1, 77, b"fanout");
            let sent = probe.sent();
            assert_eq!(sent.len(), 3);
            for (i, (dst, frame)) in sent.iter().enumerate() {
                assert_eq!(*dst, i + 1);
                let h = PacketHeader::decode(frame);
                assert_eq!(h.tag, 77);
                assert_eq!(h.kind, PacketKind::Eager);
            }
        });
    }

    #[test]
    fn failed_eager_send_surfaces_the_device_error() {
        with_ctx(|ctx| {
            let (mut dev, probe) = ScriptedDevice::new(0, 2);
            dev.fail_sends = Some(crate::device::DeviceError::Timeout { peer: 1 });
            let mut a = Adi::new(Box::new(dev), SmpiCosts::channel_interface());
            let err = a.isend(ctx, 1, 0, 5, b"doomed").unwrap_err();
            assert_eq!(err, crate::device::DeviceError::Timeout { peer: 1 });
            assert_eq!(probe.sent_count(), 0, "nothing left the node");
        });
    }

    #[test]
    fn failed_rts_leaves_no_dangling_rendezvous_state() {
        with_ctx(|ctx| {
            let (mut dev, _probe) = ScriptedDevice::new(0, 2);
            dev.fail_sends = Some(crate::device::DeviceError::PeerDown { peer: 1 });
            let mut a = Adi::new(Box::new(dev), SmpiCosts::channel_interface());
            let err = a.isend(ctx, 1, 0, 5, &vec![0u8; 20 * 1024]).unwrap_err();
            assert_eq!(err, crate::device::DeviceError::PeerDown { peer: 1 });
            assert!(
                a.rndz_sends.is_empty(),
                "a failed RTS must not park a pending send"
            );
        });
    }

    #[test]
    fn failed_cts_reply_surfaces_through_irecv() {
        with_ctx(|ctx| {
            let (mut dev, probe) = ScriptedDevice::new(0, 2);
            dev.fail_sends = Some(crate::device::DeviceError::Corrupt { peer: 1 });
            probe.feed(1, {
                // A rendezvous announcement parked in the unexpected
                // queue; matching it requires sending a CTS, which the
                // device refuses.
                let h = PacketHeader {
                    kind: PacketKind::RndzRts,
                    src: 1,
                    tag: 4,
                    context: 0,
                    len: 20 * 1024,
                    req: 77,
                };
                h.encode(SmpiCosts::channel_interface().header_bytes)
            });
            let mut a = Adi::new(Box::new(dev), SmpiCosts::channel_interface());
            a.progress(ctx);
            let err = a.irecv(ctx, 0, Some(1), Some(4)).unwrap_err();
            assert_eq!(err, crate::device::DeviceError::Corrupt { peer: 1 });
        });
    }

    #[test]
    fn eager_mcast_fits_respects_frame_limit() {
        let (dev, _probe) = ScriptedDevice::new(0, 2);
        let mut dev = dev;
        dev.max_frame = Some(1000);
        let a = Adi::new(Box::new(dev), SmpiCosts::channel_interface());
        assert!(a.eager_mcast_fits(1000 - a.costs().header_bytes));
        assert!(!a.eager_mcast_fits(1000));
    }
}
