//! The Channel Interface: the narrow device layer MPICH ports ride on,
//! plus the wire format of channel packets.

use des::ProcCtx;

use crate::types::Tag;

/// A transport failure the device surfaces instead of delivering. Only
/// produced by devices with a reliability layer underneath (the BBP
/// device over a faulted ring); plain devices always succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// The frame (or its acknowledgement) was corrupted beyond the
    /// transport's repair budget.
    Corrupt {
        /// World rank of the peer involved.
        peer: usize,
    },
    /// The transport's retry budget expired without confirmation.
    Timeout {
        /// World rank of the peer involved.
        peer: usize,
    },
    /// The peer has left the network (bypassed or failed node).
    PeerDown {
        /// World rank of the dead peer.
        peer: usize,
    },
    /// This node's network segment lost its quorum: the transport froze
    /// at its last committed membership epoch and refuses all traffic
    /// until the partition heals and the majority readmits it. Unlike
    /// the other variants this failure names no peer — the whole node
    /// is cut off.
    Partitioned {
        /// The membership epoch the transport froze at.
        epoch: u32,
    },
}

impl DeviceError {
    /// World rank of the peer the failure involves. Panics on
    /// [`DeviceError::Partitioned`], which involves no single peer.
    pub fn peer(&self) -> usize {
        match *self {
            DeviceError::Corrupt { peer }
            | DeviceError::Timeout { peer }
            | DeviceError::PeerDown { peer } => peer,
            DeviceError::Partitioned { .. } => {
                panic!("a partition failure involves no single peer")
            }
        }
    }
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::Corrupt { peer } => {
                write!(f, "frame to/from rank {peer} corrupted beyond repair")
            }
            DeviceError::Timeout { peer } => {
                write!(f, "transport timed out talking to rank {peer}")
            }
            DeviceError::PeerDown { peer } => write!(f, "rank {peer} is down"),
            DeviceError::Partitioned { epoch } => {
                write!(f, "network partitioned; frozen at membership epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// Discriminates channel packets. A frame's first byte is a magic value
/// telling channel packets apart from the tiny raw frames the native
/// collectives use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Complete message, payload inline (short-message protocol).
    Eager,
    /// Rendezvous request-to-send: announces a long message.
    RndzRts,
    /// Rendezvous clear-to-send: receiver matched the RTS.
    RndzCts,
    /// Rendezvous payload, correlated to the receiver's request.
    RndzData,
}

impl PacketKind {
    fn to_byte(self) -> u8 {
        match self {
            PacketKind::Eager => 0,
            PacketKind::RndzRts => 1,
            PacketKind::RndzCts => 2,
            PacketKind::RndzData => 3,
        }
    }

    fn from_byte(b: u8) -> Self {
        match b {
            0 => PacketKind::Eager,
            1 => PacketKind::RndzRts,
            2 => PacketKind::RndzCts,
            3 => PacketKind::RndzData,
            other => panic!("corrupt packet kind {other}"),
        }
    }
}

/// First byte of every channel packet frame.
pub(crate) const MAGIC_CHANNEL: u8 = 0xC5;
/// First byte of a raw native-collective null frame.
pub(crate) const MAGIC_NULL: u8 = 0xB0;

/// The MPID packet header. Carried in the first `header_bytes` of every
/// channel frame (the real MPICH header is a 64-byte union; we encode the
/// live fields and pad to the configured size, paying the configured PIO
/// cost for all of it — faithfully unoptimized, like the paper's port).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketHeader {
    /// Packet type.
    pub kind: PacketKind,
    /// Sender's world rank.
    pub src: usize,
    /// MPI tag.
    pub tag: Tag,
    /// Communicator context id.
    pub context: u16,
    /// Full message payload length in bytes (for `RndzRts`, the length of
    /// the message being announced, not of this frame).
    pub len: u32,
    /// Request correlation id for the rendezvous handshake.
    pub req: u64,
}

/// Fields actually encoded; the rest of the configured header is padding.
pub(crate) const HEADER_MIN_BYTES: usize = 24;

impl PacketHeader {
    /// Encode into exactly `header_bytes` bytes (panics if smaller than
    /// the live fields — configuration error).
    pub fn encode(&self, header_bytes: usize) -> Vec<u8> {
        assert!(
            header_bytes >= HEADER_MIN_BYTES,
            "header too small to hold the packet fields"
        );
        let mut out = vec![0u8; header_bytes];
        out[0] = MAGIC_CHANNEL;
        out[1] = self.kind.to_byte();
        out[2..4].copy_from_slice(&self.context.to_le_bytes());
        out[4..8].copy_from_slice(&(self.src as u32).to_le_bytes());
        out[8..12].copy_from_slice(&self.tag.to_le_bytes());
        out[12..16].copy_from_slice(&self.len.to_le_bytes());
        out[16..24].copy_from_slice(&self.req.to_le_bytes());
        out
    }

    /// Decode from a frame (must start with the channel magic byte).
    pub fn decode(frame: &[u8]) -> Self {
        assert!(frame.len() >= HEADER_MIN_BYTES, "truncated channel frame");
        assert_eq!(frame[0], MAGIC_CHANNEL, "not a channel frame");
        PacketHeader {
            kind: PacketKind::from_byte(frame[1]),
            context: u16::from_le_bytes(frame[2..4].try_into().unwrap()),
            src: u32::from_le_bytes(frame[4..8].try_into().unwrap()) as usize,
            tag: u32::from_le_bytes(frame[8..12].try_into().unwrap()),
            len: u32::from_le_bytes(frame[12..16].try_into().unwrap()),
            req: u64::from_le_bytes(frame[16..24].try_into().unwrap()),
        }
    }
}

/// A raw native-collective null frame: one word on the wire.
/// `[MAGIC_NULL, phase, context_lo, context_hi]`.
pub(crate) fn encode_null(context: u16, phase: u8) -> Vec<u8> {
    let c = context.to_le_bytes();
    vec![MAGIC_NULL, phase, c[0], c[1]]
}

pub(crate) fn decode_null(frame: &[u8]) -> Option<(u16, u8)> {
    if frame.len() == 4 && frame[0] == MAGIC_NULL {
        Some((u16::from_le_bytes([frame[2], frame[3]]), frame[1]))
    } else {
        None
    }
}

/// The device under the Channel Interface. One instance per rank, owned
/// by that rank's process.
pub trait Device: Send {
    /// This device's world rank.
    fn rank(&self) -> usize;
    /// World size.
    fn nprocs(&self) -> usize;
    /// Per-pair-FIFO frame delivery to `dst`. `Err` means the transport
    /// gave up after exhausting whatever reliability budget it has; the
    /// ADI turns that into an MPI-level error.
    fn send_frame(
        &mut self,
        ctx: &mut ProcCtx,
        dst: usize,
        frame: &[u8],
    ) -> Result<(), DeviceError>;
    /// One progress poll: the next arrived frame, if any, with its source.
    fn try_recv_frame(&mut self, ctx: &mut ProcCtx) -> Option<(usize, Vec<u8>)>;
    /// Hardware multicast of one frame; `Ok(false)` if unsupported
    /// (callers fall back to point-to-point).
    fn mcast_frame(
        &mut self,
        ctx: &mut ProcCtx,
        targets: &[usize],
        frame: &[u8],
    ) -> Result<bool, DeviceError>;
    /// Whether [`Device::mcast_frame`] works (the paper's "additional
    /// functionality provided by the underlying device").
    fn has_native_mcast(&self) -> bool;
    /// Largest frame this device can carry in one piece (`None` =
    /// unlimited). The ADI segments rendezvous data to fit.
    fn max_frame(&self) -> Option<usize> {
        None
    }
    /// Park until new traffic may be available, returning `true` if the
    /// device blocked (interrupt-capable transports). The default
    /// returns `false`, telling the progress engine to pace its own
    /// polling.
    fn idle_wait(&mut self, _ctx: &mut ProcCtx) -> bool {
        false
    }
    /// The transport's failure-detector view, as `(epoch, alive_mask)`
    /// — bit `r` of the mask is set while world rank `r` is believed
    /// alive. `None` (the default) means the device has no membership
    /// layer: every peer is presumed alive forever and the degraded-mode
    /// checks are vacuous.
    fn membership(&self) -> Option<(u32, u32)> {
        None
    }
    /// Quorum-enforced membership only: `Some(epoch)` while the
    /// transport is frozen because this node's segment lost its quorum
    /// (the epoch is the last committed view it froze at). The default
    /// `None` means the device never partitions. The ADI checks this at
    /// operation entry and inside blocking waits so minority ranks fail
    /// typed instead of hanging.
    fn partitioned(&self) -> Option<u32> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips_through_the_wire_format() {
        let h = PacketHeader {
            kind: PacketKind::RndzRts,
            src: 3,
            tag: 77,
            context: 9,
            len: 123_456,
            req: 0xDEAD_BEEF_u64,
        };
        let bytes = h.encode(64);
        assert_eq!(bytes.len(), 64);
        assert_eq!(PacketHeader::decode(&bytes), h);
    }

    #[test]
    fn all_kinds_round_trip() {
        for kind in [
            PacketKind::Eager,
            PacketKind::RndzRts,
            PacketKind::RndzCts,
            PacketKind::RndzData,
        ] {
            assert_eq!(PacketKind::from_byte(kind.to_byte()), kind);
        }
    }

    #[test]
    #[should_panic(expected = "header too small")]
    fn undersized_header_is_a_config_error() {
        let h = PacketHeader {
            kind: PacketKind::Eager,
            src: 0,
            tag: 0,
            context: 0,
            len: 0,
            req: 0,
        };
        let _ = h.encode(8);
    }

    #[test]
    fn null_frames_round_trip_and_do_not_look_like_packets() {
        let f = encode_null(513, 7);
        assert_eq!(f.len(), 4);
        assert_eq!(decode_null(&f), Some((513, 7)));
        assert_ne!(f[0], MAGIC_CHANNEL);
    }

    #[test]
    fn device_errors_render_and_expose_the_peer() {
        for (e, needle) in [
            (DeviceError::Corrupt { peer: 3 }, "corrupted"),
            (DeviceError::Timeout { peer: 3 }, "timed out"),
            (DeviceError::PeerDown { peer: 3 }, "down"),
        ] {
            assert_eq!(e.peer(), 3);
            assert!(e.to_string().contains(needle), "{e}");
            assert!(e.to_string().contains('3'), "{e}");
        }
        let p = DeviceError::Partitioned { epoch: 5 };
        assert!(p.to_string().contains("partitioned"), "{p}");
        assert!(p.to_string().contains('5'), "{p}");
    }

    #[test]
    #[should_panic(expected = "no single peer")]
    fn partition_failures_name_no_peer() {
        let _ = DeviceError::Partitioned { epoch: 1 }.peer();
    }

    #[test]
    fn decode_null_rejects_channel_frames() {
        let h = PacketHeader {
            kind: PacketKind::Eager,
            src: 0,
            tag: 0,
            context: 0,
            len: 0,
            req: 0,
        };
        assert_eq!(decode_null(&h.encode(64)), None);
    }
}
