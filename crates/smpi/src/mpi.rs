//! The MPI bindings: communicators and point-to-point operations.

use std::collections::{HashMap, HashSet};

use des::obs::{Layer, Stage};
use des::ProcCtx;

use crate::adi::Adi;
use crate::collectives::CollectiveImpl;
use crate::costs::SmpiCosts;
use crate::device::Device;
use crate::types::{MpiError, ReqId, Status, Tag};

/// Highest tag value applications may use; tags above are reserved for
/// the collective implementations.
pub const MAX_USER_TAG: Tag = 0xEFFF_FFFF;

/// A communicator: a context id pair (point-to-point + collective, as in
/// MPICH) and an ordered group of world ranks.
#[derive(Debug, Clone)]
pub struct Comm {
    pub(crate) context: u16,
    pub(crate) coll_context: u16,
    /// World rank per communicator rank.
    pub(crate) ranks: Vec<usize>,
    /// Our communicator rank.
    pub(crate) me: usize,
    /// Collective algorithm selection.
    pub(crate) coll: CollectiveImpl,
}

impl Comm {
    /// Our rank within this communicator.
    pub fn rank(&self) -> usize {
        self.me
    }

    /// Number of processes in this communicator.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// Translate a communicator rank to a world rank.
    pub fn world_rank(&self, comm_rank: usize) -> usize {
        self.ranks[comm_rank]
    }

    /// Translate a world rank back to a communicator rank (None if the
    /// process is not in the group).
    pub fn comm_rank(&self, world: usize) -> Option<usize> {
        self.ranks.iter().position(|&r| r == world)
    }

    /// Which collective implementation this communicator uses.
    pub fn collective_impl(&self) -> CollectiveImpl {
        self.coll
    }

    /// A copy of this communicator pinned to the given collective
    /// implementation (the benches compare both on one world).
    pub fn with_collectives(&self, coll: CollectiveImpl) -> Comm {
        Comm {
            coll,
            ..self.clone()
        }
    }

    fn check(&self, rank: usize) -> Result<(), MpiError> {
        if rank < self.ranks.len() {
            Ok(())
        } else {
            Err(MpiError::BadRank {
                rank,
                size: self.ranks.len(),
            })
        }
    }
}

/// One rank's MPI library instance. Owns the ADI (and through it the
/// device); moved into the rank's simulated process.
pub struct Mpi {
    pub(crate) adi: Adi,
    default_coll: CollectiveImpl,
    pub(crate) next_context: u16,
    /// Per-collective-context barrier phase counters.
    pub(crate) barrier_phase: HashMap<u16, u8>,
    /// Contexts of revoked communicators (degraded mode): populated by
    /// a local [`Mpi::revoke`] or by a peer's revocation notice.
    pub(crate) revoked: HashSet<u16>,
}

impl Mpi {
    /// Build from a device. Most users go through
    /// [`crate::MpiWorld`] instead.
    pub fn new(dev: Box<dyn Device>, costs: SmpiCosts, default_coll: CollectiveImpl) -> Self {
        Mpi {
            adi: Adi::new(dev, costs),
            default_coll,
            next_context: 2, // 0/1 belong to the world communicator
            barrier_phase: HashMap::new(),
            revoked: HashSet::new(),
        }
    }

    /// Our world rank.
    pub fn rank(&self) -> usize {
        self.adi.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.adi.nprocs()
    }

    /// The ADI (stats, device access).
    pub fn adi(&self) -> &Adi {
        &self.adi
    }

    /// `MPI_COMM_WORLD`.
    pub fn comm_world(&self) -> Comm {
        Comm {
            context: 0,
            coll_context: 1,
            ranks: (0..self.size()).collect(),
            me: self.rank(),
            coll: self.default_coll,
        }
    }

    fn charge_binding(&self, ctx: &mut ProcCtx) {
        ctx.advance(self.adi.costs().binding_ns);
    }

    /// Open an MPI-layer span at the current instant.
    pub(crate) fn span_enter(&self, ctx: &ProcCtx, name: &'static str) {
        ctx.obs()
            .span_enter(ctx.now(), self.rank() as u32, Layer::Mpi, name);
    }

    /// Close the innermost MPI-layer span of this name.
    pub(crate) fn span_exit(&self, ctx: &ProcCtx, name: &'static str) {
        ctx.obs()
            .span_exit(ctx.now(), self.rank() as u32, Layer::Mpi, name);
    }

    /// A message is entering the stack here: mint its trace id, publish
    /// it for every layer below (the BBP descriptor, the ring's packet
    /// plans), and record the `send_enter` checkpoint.
    pub(crate) fn trace_send_enter(&self, ctx: &ProcCtx, payload_len: usize) -> u64 {
        let rec = ctx.obs();
        let id = rec.mint_trace_id(self.rank() as u32);
        rec.set_current_trace(self.rank() as u32, id);
        rec.lifecycle(
            ctx.now(),
            self.rank() as u32,
            id,
            Stage::SendEnter,
            payload_len as u64,
        );
        id
    }

    /// Close the send entry: clear the published id, and on a typed
    /// error record the `error` checkpoint and snapshot the flight ring
    /// for the postmortem.
    pub(crate) fn trace_send_exit<T>(&self, ctx: &ProcCtx, id: u64, result: &Result<T, MpiError>) {
        let rec = ctx.obs();
        rec.set_current_trace(self.rank() as u32, 0);
        if result.is_err() {
            rec.lifecycle(ctx.now(), self.rank() as u32, id, Stage::Error, 0);
            rec.flight()
                .dump_to_dir(&format!("mpi_send_error_n{}", self.rank()));
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Blocking standard-mode send.
    pub fn send(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        dst: usize,
        tag: Tag,
        data: &[u8],
    ) -> Result<(), MpiError> {
        self.span_enter(ctx, "send");
        let res = self.isend(ctx, comm, dst, tag, data);
        let out = match res {
            Ok(req) => {
                self.wait_send(ctx, req);
                Ok(())
            }
            Err(e) => Err(e),
        };
        self.span_exit(ctx, "send");
        out
    }

    /// Blocking receive. `src`/`tag` of `None` are the wildcards.
    pub fn recv(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> Result<(Status, Vec<u8>), MpiError> {
        self.span_enter(ctx, "recv");
        let res = self.irecv(ctx, comm, src, tag);
        let out = match res {
            Ok(req) => Ok(self.wait_recv(ctx, comm, req)),
            Err(e) => Err(e),
        };
        self.span_exit(ctx, "recv");
        out
    }

    /// Non-blocking send.
    pub fn isend(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        dst: usize,
        tag: Tag,
        data: &[u8],
    ) -> Result<ReqId, MpiError> {
        assert!(tag <= MAX_USER_TAG, "tag {tag:#x} is reserved");
        let trace = self.trace_send_enter(ctx, data.len());
        self.span_enter(ctx, "isend");
        self.charge_binding(ctx);
        let out = comm
            .check(dst)
            .and_then(|()| self.degraded_entry(comm, &[dst]).map(|_| ()))
            .and_then(|()| {
                self.adi
                    .isend(ctx, comm.world_rank(dst), comm.context, tag, data)
                    .map_err(|e| self.transport_to_mpi(comm, e))
            });
        self.span_exit(ctx, "isend");
        self.trace_send_exit(ctx, trace, &out);
        out
    }

    /// Non-blocking receive.
    pub fn irecv(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> Result<ReqId, MpiError> {
        if let Some(t) = tag {
            assert!(t <= MAX_USER_TAG, "tag {t:#x} is reserved");
        }
        self.span_enter(ctx, "irecv");
        self.charge_binding(ctx);
        let out = (|| {
            let world_src = match src {
                Some(s) => {
                    comm.check(s)?;
                    // A receive from a dead rank can never complete
                    // (ULFM raises PROC_FAILED on it); wildcard
                    // receives stay valid — a live sender may match.
                    self.degraded_entry(comm, &[s])?;
                    Some(comm.world_rank(s))
                }
                None => {
                    self.degraded_entry(comm, &[])?;
                    None
                }
            };
            self.adi
                .irecv(ctx, comm.context, world_src, tag)
                .map_err(|e| self.transport_to_mpi(comm, e))
        })();
        self.span_exit(ctx, "irecv");
        out
    }

    /// Blocking synchronous-mode send (`MPI_Ssend`): returns only after
    /// the receiver has matched the message (always uses the rendezvous
    /// handshake, whatever the payload size).
    pub fn ssend(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        dst: usize,
        tag: Tag,
        data: &[u8],
    ) -> Result<(), MpiError> {
        assert!(tag <= MAX_USER_TAG, "tag {tag:#x} is reserved");
        let trace = self.trace_send_enter(ctx, data.len());
        self.span_enter(ctx, "ssend");
        self.charge_binding(ctx);
        let out = comm
            .check(dst)
            .and_then(|()| self.degraded_entry(comm, &[dst]).map(|_| ()))
            .and_then(|()| {
                let req = self
                    .adi
                    .issend(ctx, comm.world_rank(dst), comm.context, tag, data)
                    .map_err(|e| self.transport_to_mpi(comm, e))?;
                self.wait_send(ctx, req);
                Ok(())
            });
        self.span_exit(ctx, "ssend");
        self.trace_send_exit(ctx, trace, &out);
        out
    }

    /// Complete a send request.
    pub fn wait_send(&mut self, ctx: &mut ProcCtx, req: ReqId) {
        self.span_enter(ctx, "wait");
        let r = self.adi.wait(ctx, req);
        self.span_exit(ctx, "wait");
        debug_assert!(r.is_none(), "wait_send redeemed a receive request");
    }

    /// Complete a receive request, translating the source into the
    /// communicator's rank space.
    pub fn wait_recv(&mut self, ctx: &mut ProcCtx, comm: &Comm, req: ReqId) -> (Status, Vec<u8>) {
        self.span_enter(ctx, "wait");
        let waited = self.adi.wait(ctx, req);
        self.span_exit(ctx, "wait");
        let (mut status, data) = waited.expect("wait_recv redeemed a send request");
        status.source = comm
            .comm_rank(status.source)
            .expect("message from outside the communicator matched its context");
        (status, data)
    }

    /// Complete a batch of receive requests, in order.
    pub fn waitall_recv(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        reqs: Vec<ReqId>,
    ) -> Vec<(Status, Vec<u8>)> {
        reqs.into_iter()
            .map(|r| self.wait_recv(ctx, comm, r))
            .collect()
    }

    /// Simultaneous send and receive (deadlock-free exchange). The
    /// argument count mirrors the MPI binding.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        dst: usize,
        send_tag: Tag,
        data: &[u8],
        src: Option<usize>,
        recv_tag: Option<Tag>,
    ) -> Result<(Status, Vec<u8>), MpiError> {
        let rreq = self.irecv(ctx, comm, src, recv_tag)?;
        let sreq = self.isend(ctx, comm, dst, send_tag, data)?;
        self.wait_send(ctx, sreq);
        Ok(self.wait_recv(ctx, comm, rreq))
    }

    /// Drive the progress engine once without blocking (lets applications
    /// overlap computation with rendezvous traffic).
    pub fn progress(&mut self, ctx: &mut ProcCtx) {
        self.adi.progress(ctx);
    }

    /// `MPI_Iprobe`: non-blocking check for a matching incoming message
    /// (does not consume it).
    pub fn iprobe(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> Result<Option<Status>, MpiError> {
        self.charge_binding(ctx);
        let world_src = match src {
            Some(s) => {
                comm.check(s)?;
                self.degraded_entry(comm, &[s])?;
                Some(comm.world_rank(s))
            }
            None => {
                self.degraded_entry(comm, &[])?;
                None
            }
        };
        Ok(self
            .adi
            .iprobe(ctx, comm.context, world_src, tag)
            .map(|mut st| {
                st.source = comm
                    .comm_rank(st.source)
                    .expect("probe matched foreign context");
                st
            }))
    }

    /// `MPI_Probe`: block until a matching message is available, and
    /// report it without consuming it.
    pub fn probe(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> Result<Status, MpiError> {
        loop {
            if let Some(st) = self.iprobe(ctx, comm, src, tag)? {
                return Ok(st);
            }
        }
    }

    /// `MPI_Waitany` over receive requests: block until one completes
    /// and return `(index, status, payload)`.
    pub fn waitany_recv(
        &mut self,
        ctx: &mut ProcCtx,
        comm: &Comm,
        reqs: &[ReqId],
    ) -> (usize, Status, Vec<u8>) {
        assert!(!reqs.is_empty(), "waitany on an empty request set");
        loop {
            if let Some(idx) = reqs.iter().position(|&r| self.adi.is_complete(r)) {
                let (st, data) = self.wait_recv(ctx, comm, reqs[idx]);
                return (idx, st, data);
            }
            self.adi.progress(ctx);
        }
    }

    /// `MPI_Comm_dup`: a congruent communicator with fresh contexts (so
    /// libraries can isolate their traffic). Collective: synchronizes
    /// the group like the real call does.
    pub fn comm_dup(&mut self, ctx: &mut ProcCtx, comm: &Comm) -> Comm {
        // Every rank allocates the same context pair because all ranks
        // perform communicator-creating calls in the same collective
        // order (the MPI requirement that makes this sound).
        let base = self.next_context;
        self.next_context += 2;
        assert!(
            self.next_context < crate::degraded::SHRINK_CONTEXT_BASE,
            "sequential context ids collided with the shrink-derived range"
        );
        self.barrier(ctx, comm);
        Comm {
            context: base,
            coll_context: base + 1,
            ranks: comm.ranks.clone(),
            me: comm.me,
            coll: comm.coll,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::CollectiveImpl;
    use crate::costs::SmpiCosts;
    use crate::testutil::ScriptedDevice;

    fn mpi(rank: usize, n: usize) -> Mpi {
        let (dev, _probe) = ScriptedDevice::new(rank, n);
        Mpi::new(
            Box::new(dev),
            SmpiCosts::channel_interface(),
            CollectiveImpl::Native,
        )
    }

    #[test]
    fn comm_world_covers_all_ranks() {
        let m = mpi(2, 5);
        let comm = m.comm_world();
        assert_eq!(comm.size(), 5);
        assert_eq!(comm.rank(), 2);
        for r in 0..5 {
            assert_eq!(comm.world_rank(r), r);
            assert_eq!(comm.comm_rank(r), Some(r));
        }
        assert_eq!(comm.comm_rank(9), None);
    }

    #[test]
    fn with_collectives_overrides_only_the_algorithm() {
        let m = mpi(0, 3);
        let comm = m.comm_world();
        assert_eq!(comm.collective_impl(), CollectiveImpl::Native);
        let p2p = comm.with_collectives(CollectiveImpl::PointToPoint);
        assert_eq!(p2p.collective_impl(), CollectiveImpl::PointToPoint);
        assert_eq!(p2p.size(), comm.size());
        assert_eq!(p2p.rank(), comm.rank());
        assert_eq!(p2p.context, comm.context);
    }

    #[test]
    fn rank_and_size_mirror_the_device() {
        let m = mpi(3, 7);
        assert_eq!(m.rank(), 3);
        assert_eq!(m.size(), 7);
        assert!(m.adi().has_native_mcast());
    }
}
