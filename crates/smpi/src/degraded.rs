//! ULFM-style degraded mode: typed failure reporting, communicator
//! revocation, and shrink-based recovery — available on worlds whose
//! transport carries a membership layer
//! ([`crate::MpiWorld::scramnet_membership`]).
//!
//! The model follows MPI's User-Level Failure Mitigation proposal,
//! scaled to the simulator:
//!
//! - **Detection is the transport's job.** The BBP heartbeat detector
//!   publishes a `(epoch, alive_mask)` view; the MPI layer only reads
//!   it (through [`crate::Device::membership`]) and never guesses.
//! - **Failures are local and typed.** An operation involving a dead
//!   rank raises [`MpiError::PeerFailed`]; survivor-to-survivor traffic
//!   on the same communicator keeps working. The degraded collectives
//!   ([`Mpi::try_barrier`], [`Mpi::try_bcast`]) complete in the
//!   membership epoch they entered or fail typed for each live caller.
//! - **Recovery is explicit.** A caller that wants to interrupt the
//!   whole group calls [`Mpi::revoke`] (every live member then observes
//!   [`MpiError::Revoked`]), and the survivors call [`Mpi::shrink`] to
//!   build a dense re-ranked communicator and carry on.
//! - **Partitions fail typed, on both sides.** With quorum-enforced
//!   membership underneath, majority-side ranks see the minority graded
//!   dead ([`MpiError::PeerFailed`]) and can `revoke`/`shrink` as usual;
//!   minority-side ranks — whose transport froze — get
//!   [`MpiError::Partitioned`] from every operation (including blocked
//!   collectives, which would otherwise hang: a frozen rank's epoch
//!   never moves) until the partition heals and the majority readmits
//!   them.
//!
//! Shrink needs no negotiation traffic: epoch transitions are observed
//! identically on every live node (the membership layer's agreement
//! guarantee), so every survivor derives the same group and the same
//! context pair from its own local view.

use des::ProcCtx;

use crate::adi::REVOKE_PHASE;
use crate::device::DeviceError;
use crate::mpi::{Comm, Mpi};
use crate::types::MpiError;

/// Context-id base for shrink-derived communicators. Sequential
/// allocation ([`Mpi::comm_dup`]) grows upward from 2 and must stay
/// below this range.
pub(crate) const SHRINK_CONTEXT_BASE: u16 = 0x8000;

impl Mpi {
    /// The transport's failure-detector view, as `(epoch, alive_mask)`
    /// — `None` on worlds without a membership layer.
    pub fn membership(&self) -> Option<(u32, u32)> {
        self.adi.membership()
    }

    /// Fold any arrived revocation notices into the local revoked set.
    pub(crate) fn absorb_revocations(&mut self) {
        for context in self.adi.drain_revocations() {
            self.revoked.insert(context);
        }
    }

    /// Degraded-mode entry check for an operation on `comm` involving
    /// the given communicator ranks. Returns the detector view in force
    /// (so collectives can pin their entry epoch), or the typed failure
    /// that forbids the operation. Vacuous — always `Ok(None)` — on
    /// detector-less worlds.
    pub(crate) fn degraded_entry(
        &mut self,
        comm: &Comm,
        peers: &[usize],
    ) -> Result<Option<(u32, u32)>, MpiError> {
        self.absorb_revocations();
        if let Some(epoch) = self.adi.partitioned() {
            return Err(MpiError::Partitioned { epoch });
        }
        let view = self.adi.membership();
        if self.revoked.contains(&comm.context) {
            return Err(MpiError::Revoked {
                epoch: view.map_or(0, |(e, _)| e),
            });
        }
        if let Some((epoch, mask)) = view {
            if let Some(&rank) = peers
                .iter()
                .find(|&&p| mask & (1 << comm.world_rank(p)) == 0)
            {
                return Err(MpiError::PeerFailed { rank, epoch });
            }
        }
        Ok(view)
    }

    /// Translate a transport failure, upgrading the reliability layer's
    /// `PeerDown` to the ULFM taxonomy when a failure detector is
    /// present to vouch for the death, and the quorum layer's freeze to
    /// the typed partition error.
    pub(crate) fn transport_to_mpi(&self, comm: &Comm, e: DeviceError) -> MpiError {
        if let DeviceError::Partitioned { epoch } = e {
            return MpiError::Partitioned { epoch };
        }
        if let DeviceError::PeerDown { peer } = e {
            if let (Some((epoch, _)), Some(rank)) = (self.adi.membership(), comm.comm_rank(peer)) {
                return MpiError::PeerFailed { rank, epoch };
            }
        }
        MpiError::Transport(e)
    }

    /// Inside a degraded collective's wait loop: fail typed the moment
    /// the membership epoch leaves the one the collective entered in,
    /// or a revocation notice arrives. This is what turns "a member
    /// died while we were blocked" from a hang into
    /// [`MpiError::PeerFailed`] at every live caller.
    pub(crate) fn abort_if_epoch_moved(
        &mut self,
        comm: &Comm,
        entry_epoch: u32,
    ) -> Result<(), MpiError> {
        self.absorb_revocations();
        // A frozen minority rank's epoch never moves (that is the point
        // of the freeze), so without this check a blocked collective
        // would spin forever waiting for traffic the fence rejects.
        if let Some(epoch) = self.adi.partitioned() {
            return Err(MpiError::Partitioned { epoch });
        }
        if self.revoked.contains(&comm.context) {
            return Err(MpiError::Revoked {
                epoch: self.adi.membership().map_or(0, |(e, _)| e),
            });
        }
        if let Some((epoch, mask)) = self.adi.membership() {
            if epoch != entry_epoch {
                let dead = (0..comm.size()).find(|&r| mask & (1 << comm.world_rank(r)) == 0);
                return Err(match dead {
                    Some(rank) => MpiError::PeerFailed { rank, epoch },
                    // The epoch moved without killing a member (a
                    // readmission): no one died, but the one-epoch
                    // guarantee is broken — report the interruption.
                    None => MpiError::Revoked { epoch },
                });
            }
        }
        Ok(())
    }

    /// ULFM `MPI_Comm_revoke`: mark `comm` unusable group-wide. The
    /// local effect is immediate; every other live member receives a
    /// revocation notice and observes [`MpiError::Revoked`] at its next
    /// operation on `comm`. Idempotent; sends to already-dead members
    /// are skipped and a member dying mid-notice is tolerated.
    pub fn revoke(&mut self, ctx: &mut ProcCtx, comm: &Comm) {
        self.absorb_revocations();
        if !self.revoked.insert(comm.context) {
            return;
        }
        let mask = self.adi.membership().map(|(_, m)| m);
        for r in 0..comm.size() {
            if r == comm.rank() {
                continue;
            }
            let w = comm.world_rank(r);
            if mask.is_some_and(|m| m & (1 << w) == 0) {
                continue;
            }
            self.adi.send_null_lossy(ctx, w, comm.context, REVOKE_PHASE);
        }
    }

    /// ULFM `MPI_Comm_shrink`: the dense re-ranked communicator of
    /// `comm`'s survivors, with collectives rebuilt on fresh contexts.
    /// Collective over the survivors (it ends with a synchronizing
    /// [`Mpi::try_barrier`] on the new communicator, which also proves
    /// the new contexts carry traffic).
    ///
    /// The context pair is derived from the membership epoch, so all
    /// survivors agree on it without negotiation. One shrink per epoch
    /// is the intended workflow (shrinking two *different* communicators
    /// in the same epoch would alias contexts).
    pub fn shrink(&mut self, ctx: &mut ProcCtx, comm: &Comm) -> Result<Comm, MpiError> {
        let Some((epoch, mask)) = self.adi.membership() else {
            // No failure detector means nothing can have failed.
            return Ok(comm.clone());
        };
        let ranks: Vec<usize> = comm
            .ranks
            .iter()
            .copied()
            .filter(|&w| mask & (1 << w) != 0)
            .collect();
        let my_world = comm.world_rank(comm.rank());
        let me = ranks
            .iter()
            .position(|&w| w == my_world)
            .expect("a rank the detector declared dead called shrink");
        let context = SHRINK_CONTEXT_BASE + ((epoch as u16) & 0x3FFF) * 2;
        let shrunk = Comm {
            context,
            coll_context: context + 1,
            ranks,
            me,
            coll: comm.coll,
        };
        self.try_barrier(ctx, &shrunk)?;
        Ok(shrunk)
    }
}
