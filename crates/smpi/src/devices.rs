//! Concrete devices: the BillBoard Protocol on SCRAMNet and TCP sockets
//! on the conventional networks.

use bbp::{BbpEndpoint, BbpError};
use des::obs::Layer;
use des::ProcCtx;
use netsim::{MyrinetApiPort, TcpSock};

use crate::device::{Device, DeviceError};

/// Translate a BBP reliability-layer failure into the device-layer
/// taxonomy. Anything else out of the endpoint (oversized payload, bad
/// rank) is a configuration bug in the stack, not a fault, and panics.
fn map_bbp_err(e: BbpError) -> DeviceError {
    match e {
        BbpError::Corrupt { peer } => DeviceError::Corrupt { peer },
        BbpError::Timeout { peer, .. } => DeviceError::Timeout { peer },
        BbpError::PeerDown { peer } => DeviceError::PeerDown { peer },
        BbpError::Partitioned { epoch } => DeviceError::Partitioned { epoch },
        other => panic!("BBP configuration error under the channel device: {other}"),
    }
}

/// The SCRAMNet channel device: frames ride the BillBoard Protocol, which
/// already guarantees reliable per-pair-FIFO delivery and provides the
/// hardware-replicated multicast the native collectives exploit.
pub struct BbpDevice {
    ep: BbpEndpoint,
}

impl BbpDevice {
    /// Wrap a BillBoard endpoint as the channel device.
    pub fn new(ep: BbpEndpoint) -> Self {
        BbpDevice { ep }
    }

    /// Borrow the underlying endpoint (stats).
    pub fn endpoint(&self) -> &BbpEndpoint {
        &self.ep
    }
}

impl Device for BbpDevice {
    fn rank(&self) -> usize {
        self.ep.rank()
    }

    fn nprocs(&self) -> usize {
        self.ep.nprocs()
    }

    fn send_frame(
        &mut self,
        ctx: &mut ProcCtx,
        dst: usize,
        frame: &[u8],
    ) -> Result<(), DeviceError> {
        let node = self.ep.rank() as u32;
        ctx.obs()
            .span_enter(ctx.now(), node, Layer::Device, "frame_send");
        let out = self.ep.send(ctx, dst, frame).map_err(map_bbp_err);
        if out.is_err() {
            ctx.obs().count(ctx.now(), node, "device.send_errors", 1);
        }
        ctx.obs()
            .span_exit(ctx.now(), node, Layer::Device, "frame_send");
        out
    }

    fn try_recv_frame(&mut self, ctx: &mut ProcCtx) -> Option<(usize, Vec<u8>)> {
        // The progress engine is the device's only periodic entry point,
        // so it doubles as the membership driver: heartbeat publication
        // and failure detection advance once per poll (a complete no-op
        // when the endpoint has no membership extension).
        self.ep.membership_tick(ctx);
        // No span: the progress engine polls this continuously and a
        // span per empty poll would drown the trace. A received frame
        // still shows up as the nested `bbp` deliver span.
        let got = self.ep.try_recv_any(ctx);
        if got.is_some() {
            ctx.obs()
                .count(ctx.now(), self.ep.rank() as u32, "device.frames_rx", 1);
        }
        got
    }

    fn mcast_frame(
        &mut self,
        ctx: &mut ProcCtx,
        targets: &[usize],
        frame: &[u8],
    ) -> Result<bool, DeviceError> {
        let node = self.ep.rank() as u32;
        ctx.obs()
            .span_enter(ctx.now(), node, Layer::Device, "frame_mcast");
        let out = self.ep.mcast(ctx, targets, frame).map_err(map_bbp_err);
        if out.is_err() {
            ctx.obs().count(ctx.now(), node, "device.send_errors", 1);
        }
        ctx.obs()
            .span_exit(ctx.now(), node, Layer::Device, "frame_mcast");
        out.map(|()| true)
    }

    fn has_native_mcast(&self) -> bool {
        true
    }

    fn max_frame(&self) -> Option<usize> {
        Some(self.ep.config().max_payload_bytes())
    }

    fn idle_wait(&mut self, ctx: &mut ProcCtx) -> bool {
        self.ep.wait_for_traffic(ctx)
    }

    fn membership(&self) -> Option<(u32, u32)> {
        self.ep.membership_view().map(|v| (v.epoch, v.alive_mask))
    }

    fn partitioned(&self) -> Option<u32> {
        self.ep.frozen_epoch()
    }
}

/// The TCP channel device (MPICH's `ch_p4`-style socket device): one
/// connection per peer, polled round-robin.
pub struct TcpDevice {
    rank: usize,
    /// `socks[p]` is the connection to peer `p` (`None` at `p == rank`).
    socks: Vec<Option<TcpSock>>,
    rr: usize,
}

impl TcpDevice {
    /// Build from a full mesh of sockets; `socks[rank]` must be `None`
    /// and every other slot connected to the matching peer.
    pub fn new(rank: usize, socks: Vec<Option<TcpSock>>) -> Self {
        assert!(socks[rank].is_none(), "no loopback socket at own rank");
        TcpDevice { rank, socks, rr: 0 }
    }
}

impl Device for TcpDevice {
    fn rank(&self) -> usize {
        self.rank
    }

    fn nprocs(&self) -> usize {
        self.socks.len()
    }

    fn send_frame(
        &mut self,
        ctx: &mut ProcCtx,
        dst: usize,
        frame: &[u8],
    ) -> Result<(), DeviceError> {
        let node = self.rank as u32;
        ctx.obs()
            .span_enter(ctx.now(), node, Layer::Device, "frame_send");
        self.socks[dst]
            .as_ref()
            .unwrap_or_else(|| panic!("no connection to rank {dst}"))
            .send(ctx, frame);
        ctx.obs()
            .span_exit(ctx.now(), node, Layer::Device, "frame_send");
        Ok(())
    }

    fn try_recv_frame(&mut self, ctx: &mut ProcCtx) -> Option<(usize, Vec<u8>)> {
        let n = self.socks.len();
        for off in 0..n {
            let p = (self.rr + off) % n;
            if let Some(sock) = &self.socks[p] {
                if let Some(frame) = sock.try_recv(ctx) {
                    self.rr = (p + 1) % n;
                    return Some((p, frame));
                }
            }
        }
        None
    }

    fn mcast_frame(
        &mut self,
        _ctx: &mut ProcCtx,
        _targets: &[usize],
        _frame: &[u8],
    ) -> Result<bool, DeviceError> {
        Ok(false) // no hardware multicast on switched point-to-point fabrics
    }

    fn has_native_mcast(&self) -> bool {
        false
    }
}

/// The native (user-level) Myrinet device: OS-bypass messaging. Used as
/// the bulk path of [`crate::HybridDevice`], or standalone.
pub struct MyrinetDevice {
    port: MyrinetApiPort,
    nprocs: usize,
}

impl MyrinetDevice {
    /// Build a device over an existing Myrinet port for a world of `nprocs` ranks.
    pub fn new(port: MyrinetApiPort, nprocs: usize) -> Self {
        MyrinetDevice { port, nprocs }
    }
}

impl Device for MyrinetDevice {
    fn rank(&self) -> usize {
        self.port.host()
    }

    fn nprocs(&self) -> usize {
        self.nprocs
    }

    fn send_frame(
        &mut self,
        ctx: &mut ProcCtx,
        dst: usize,
        frame: &[u8],
    ) -> Result<(), DeviceError> {
        let node = self.port.host() as u32;
        ctx.obs()
            .span_enter(ctx.now(), node, Layer::Device, "frame_send");
        self.port.send(ctx, dst, frame);
        ctx.obs()
            .span_exit(ctx.now(), node, Layer::Device, "frame_send");
        Ok(())
    }

    fn try_recv_frame(&mut self, ctx: &mut ProcCtx) -> Option<(usize, Vec<u8>)> {
        self.port.try_recv(ctx)
    }

    fn mcast_frame(
        &mut self,
        _ctx: &mut ProcCtx,
        _targets: &[usize],
        _frame: &[u8],
    ) -> Result<bool, DeviceError> {
        Ok(false) // wormhole switches have no replication hardware
    }

    fn has_native_mcast(&self) -> bool {
        false
    }
}
