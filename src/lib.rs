#![warn(missing_docs)]

//! # scramnet-cluster
//!
//! Umbrella crate for the reproduction of *Low-Latency Message Passing on
//! Workstation Clusters using SCRAMNet* (IPPS 1999). It re-exports the
//! member crates so examples and integration tests can `use
//! scramnet_cluster::...` uniformly:
//!
//! - [`des`] — deterministic discrete-event simulation kernel;
//! - [`scramnet`] — the SCRAMNet replicated shared-memory ring model;
//! - [`bbp`] — the BillBoard Protocol (the paper's contribution);
//! - [`netsim`] — Fast Ethernet / ATM / Myrinet baselines with a TCP-like
//!   stack;
//! - [`smpi`] — an MPI subset layered MPICH-style over pluggable devices;
//! - [`shmem`] — the shared-memory programming model SCRAMNet was
//!   originally used with (bakery locks, barriers, counters, events);
//! - [`rpc`] — zero-copy request/reply serving over BBP with
//!   ownership-transfer buffers and credit-based backpressure;
//! - [`workload`] — seed-deterministic workload campaigns (incast,
//!   hotspots, bursts, unexpected-queue floods, stragglers, mixed
//!   MPI+RPC) with SLO capacity reports.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure.

pub use bbp;
pub use des;
pub use netsim;
pub use obs;
pub use rpc;
pub use scramnet;
pub use shmem;
pub use smpi;
pub use workload;
