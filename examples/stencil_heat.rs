#![allow(clippy::needless_range_loop)]

//! 1-D heat diffusion with halo exchange — the classic message-passing
//! workload the paper's introduction motivates (cluster computing on
//! low-latency interconnects).
//!
//! A rod of `N` cells is split across 4 ranks; each iteration exchanges
//! one-cell halos with both neighbours (`sendrecv`) and applies an
//! explicit Euler step. Because halos are tiny, the run is
//! latency-dominated — exactly the regime where SCRAMNet beats the
//! commodity networks. The example runs the same computation over the
//! SCRAMNet world and the Fast Ethernet world and compares virtual
//! wall-clock, then verifies both against a serial reference.
//!
//! Run with: `cargo run --release --example stencil_heat`

use std::sync::Arc;

use parking_lot::Mutex;
use scramnet_cluster::des::{Simulation, Time, TimeExt};
use scramnet_cluster::smpi::{Comm, Mpi, MpiWorld};

const RANKS: usize = 4;
const CELLS_PER_RANK: usize = 64;
const N: usize = RANKS * CELLS_PER_RANK;
const STEPS: usize = 200;
const ALPHA: f64 = 0.25;

fn initial(i: usize) -> f64 {
    // A hot spike in the middle of the rod.
    if (N / 2 - 4..N / 2 + 4).contains(&i) {
        100.0
    } else {
        0.0
    }
}

/// Serial reference solution.
fn serial() -> Vec<f64> {
    let mut u: Vec<f64> = (0..N).map(initial).collect();
    let mut next = u.clone();
    for _ in 0..STEPS {
        for i in 0..N {
            let left = if i == 0 { 0.0 } else { u[i - 1] };
            let right = if i == N - 1 { 0.0 } else { u[i + 1] };
            next[i] = u[i] + ALPHA * (left - 2.0 * u[i] + right);
        }
        std::mem::swap(&mut u, &mut next);
    }
    u
}

/// One rank's stencil loop with halo exchange.
fn rank_body(mpi: &mut Mpi, ctx: &mut scramnet_cluster::des::ProcCtx, comm: &Comm) -> Vec<f64> {
    let me = comm.rank();
    let lo = me * CELLS_PER_RANK;
    let mut u: Vec<f64> = (lo..lo + CELLS_PER_RANK).map(initial).collect();
    let mut next = u.clone();
    for _ in 0..STEPS {
        // Exchange halos with neighbours (boundary ranks talk to walls).
        let left_halo = if me > 0 {
            let (_, bytes) = mpi
                .sendrecv(
                    ctx,
                    comm,
                    me - 1,
                    1,
                    &u[0].to_le_bytes(),
                    Some(me - 1),
                    Some(2),
                )
                .unwrap();
            f64::from_le_bytes(bytes.try_into().unwrap())
        } else {
            0.0
        };
        let right_halo = if me < comm.size() - 1 {
            let (_, bytes) = mpi
                .sendrecv(
                    ctx,
                    comm,
                    me + 1,
                    2,
                    &u[CELLS_PER_RANK - 1].to_le_bytes(),
                    Some(me + 1),
                    Some(1),
                )
                .unwrap();
            f64::from_le_bytes(bytes.try_into().unwrap())
        } else {
            0.0
        };
        for i in 0..CELLS_PER_RANK {
            let left = if i == 0 { left_halo } else { u[i - 1] };
            let right = if i == CELLS_PER_RANK - 1 {
                right_halo
            } else {
                u[i + 1]
            };
            next[i] = u[i] + ALPHA * (left - 2.0 * u[i] + right);
        }
        std::mem::swap(&mut u, &mut next);
    }
    u
}

/// Run the distributed solve on a world; returns (virtual time, solution).
fn run_world(
    build: impl Fn(&scramnet_cluster::des::SimHandle) -> MpiWorld,
    label: &str,
) -> (Time, Vec<f64>) {
    type RankPieces = Vec<(usize, Vec<f64>)>;
    let mut sim = Simulation::new();
    let world = build(&sim.handle());
    let pieces: Arc<Mutex<RankPieces>> = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..RANKS {
        let mut mpi = world.proc(rank);
        let pieces = Arc::clone(&pieces);
        sim.spawn(format!("{label}-rank{rank}"), move |ctx| {
            let comm = mpi.comm_world();
            let u = rank_body(&mut mpi, ctx, &comm);
            mpi.barrier(ctx, &comm);
            pieces.lock().push((rank, u));
        });
    }
    let report = sim.run();
    assert!(
        report.is_clean(),
        "{label} deadlocked: {:?}",
        report.deadlocked
    );
    let mut got = pieces.lock().clone();
    got.sort_by_key(|(r, _)| *r);
    let solution: Vec<f64> = got.into_iter().flat_map(|(_, u)| u).collect();
    (report.end_time, solution)
}

fn main() {
    println!("1-D heat diffusion, {N} cells on {RANKS} ranks, {STEPS} steps, 8-byte halos\n");
    let reference = serial();

    let (t_scr, u_scr) = run_world(|h| MpiWorld::scramnet(h, RANKS), "scramnet");
    let (t_eth, u_eth) = run_world(|h| MpiWorld::fast_ethernet(h, RANKS), "ethernet");

    for (label, u) in [("SCRAMNet", &u_scr), ("Fast Ethernet", &u_eth)] {
        let err = u
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            err < 1e-9,
            "{label} diverged from the serial reference: {err}"
        );
        println!("{label:>14}: matches serial reference (max |err| = {err:.1e})");
    }
    println!("\nvirtual wall-clock for the whole solve:");
    println!("{:>14}: {}", "SCRAMNet", t_scr.pretty());
    println!("{:>14}: {}", "Fast Ethernet", t_eth.pretty());
    println!(
        "\nSCRAMNet speed-up on this latency-bound exchange: {:.1}x",
        t_eth as f64 / t_scr as f64
    );
}
