//! Exporting a Chrome trace of one instrumented 4-node `MPI_Bcast`:
//! enable the `obs` recorder, run the collective, attribute per-layer
//! self time, and write `trace_event` JSON you can load in Perfetto
//! (<https://ui.perfetto.dev>) or `about://tracing`.
//!
//! Run with: `cargo run --release --example trace_export`

use std::sync::Arc;

use parking_lot::Mutex;
use scramnet_cluster::des::obs;
use scramnet_cluster::des::{ms, us, Simulation, Time, TimeExt};
use scramnet_cluster::smpi::MpiWorld;

const RANKS: usize = 4;
const PAYLOAD: usize = 256;
const OUT: &str = "target/mpi_bcast_trace.json";

fn main() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), RANKS);
    let align: Time = ms(5);
    let last: Arc<Mutex<Time>> = Arc::new(Mutex::new(0));

    // Arm the recorder just before the timed broadcast so the trace
    // holds exactly one collective, not the warm-up.
    let rec = sim.recorder_arc();
    sim.spawn("obs-arm", move |ctx| {
        ctx.wait_until(align - us(1));
        rec.enable();
    });

    for rank in 0..RANKS {
        let mut mpi = world.proc(rank);
        let last = Arc::clone(&last);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let comm = mpi.comm_world();
            let warm = (rank == 0).then(|| vec![0u8; 4]);
            let _ = mpi.bcast(ctx, &comm, 0, warm.as_deref());
            ctx.wait_until(align);
            let data = (rank == 0).then(|| vec![0xEEu8; PAYLOAD]);
            let out = mpi.bcast(ctx, &comm, 0, data.as_deref());
            assert_eq!(out.len(), PAYLOAD);
            let mut l = last.lock();
            *l = (*l).max(ctx.now());
        });
    }
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
    let events = sim.recorder().take_events();
    println!(
        "{PAYLOAD}-byte MPI_Bcast over {RANKS} nodes: {} — {} obs events",
        (*last.lock() - align).pretty(),
        events.len()
    );

    // Per-layer self time: where did the microseconds go?
    let breakdown = obs::attribute(&events);
    println!("\nper-layer self time (summed over all nodes):");
    for (layer, self_us) in breakdown.rows_us() {
        println!("  {:<8} {self_us:>8.1} µs", layer.name());
    }

    // Hardware counters recorded along the way.
    let mut per_counter: Vec<(&str, u64)> = Vec::new();
    for ev in &events {
        if let obs::Event::Count { name, delta, .. } = ev {
            match per_counter.iter_mut().find(|(n, _)| n == name) {
                Some(slot) => slot.1 += delta,
                None => per_counter.push((name, *delta)),
            }
        }
    }
    per_counter.sort_unstable();
    println!("\ncounters:");
    for (name, total) in per_counter {
        println!("  {name:<22} {total:>8}");
    }

    let trace = obs::chrome_trace_json(&events);
    // Trace outputs are build artifacts: they go under target/, never
    // into the repo root (which exists even when running from a clean
    // checkout, since cargo creates it to build the example).
    std::fs::create_dir_all("target").expect("create output dir");
    std::fs::write(OUT, trace).expect("write trace");
    println!("\nChrome trace written to {OUT} — load it in https://ui.perfetto.dev");
}
