//! An executable walk through the paper's claims, section by section.
//! Each claim is re-verified against the simulation and scored — run it
//! to see the reproduction's state in one screen.
//!
//! Run with: `cargo run --release --example paper_walkthrough`

use std::sync::Arc;

use parking_lot::Mutex;
use scramnet_cluster::bbp::{BbpCluster, BbpConfig};
use scramnet_cluster::des::{SimHandle, Simulation, Time, TimeExt};
use scramnet_cluster::scramnet::{CostModel, Ring, RingConfig, TxMode};
use scramnet_cluster::smpi::{CollectiveImpl, MpiWorld};

struct Claim {
    section: &'static str,
    text: &'static str,
    pass: bool,
    detail: String,
}

fn check(
    claims: &mut Vec<Claim>,
    section: &'static str,
    text: &'static str,
    pass: bool,
    detail: String,
) {
    claims.push(Claim {
        section,
        text,
        pass,
        detail,
    });
}

/// One-way BBP latency, send-call → recv-return.
fn bbp_one_way(len: usize) -> f64 {
    let mut sim = Simulation::new();
    let cluster = BbpCluster::new(&sim.handle(), BbpConfig::for_nodes(4));
    let mut a = cluster.endpoint(0);
    let mut b = cluster.endpoint(1);
    let done: Arc<Mutex<Time>> = Arc::new(Mutex::new(0));
    let done2 = Arc::clone(&done);
    let payload = vec![0u8; len];
    sim.spawn("a", move |ctx| a.send(ctx, 1, &payload).unwrap());
    sim.spawn("b", move |ctx| {
        let _ = b.recv(ctx, 0);
        *done2.lock() = ctx.now();
    });
    sim.run();
    let t = *done.lock();
    t.as_us()
}

fn mpi_one_way(build: impl Fn(&SimHandle) -> MpiWorld, len: usize) -> f64 {
    let mut sim = Simulation::new();
    let world = build(&sim.handle());
    let done: Arc<Mutex<Time>> = Arc::new(Mutex::new(0));
    let done2 = Arc::clone(&done);
    let payload = vec![0u8; len];
    let mut tx = world.proc(0);
    let mut rx = world.proc(1);
    sim.spawn("tx", move |ctx| {
        let comm = tx.comm_world();
        tx.send(ctx, &comm, 1, 0, &payload).unwrap();
    });
    sim.spawn("rx", move |ctx| {
        let comm = rx.comm_world();
        let _ = rx.recv(ctx, &comm, Some(0), Some(0)).unwrap();
        *done2.lock() = ctx.now();
    });
    sim.run();
    let t = *done.lock();
    t.as_us()
}

fn barrier_us(build: impl Fn(&SimHandle) -> MpiWorld, nodes: usize) -> f64 {
    let mut sim = Simulation::new();
    let world = build(&sim.handle());
    let align = scramnet_cluster::des::ms(5);
    let last: Arc<Mutex<Time>> = Arc::new(Mutex::new(0));
    for rank in 0..nodes {
        let mut mpi = world.proc(rank);
        let last = Arc::clone(&last);
        sim.spawn(format!("r{rank}"), move |ctx| {
            let comm = mpi.comm_world();
            mpi.barrier(ctx, &comm);
            ctx.wait_until(align);
            mpi.barrier(ctx, &comm);
            let mut l = last.lock();
            *l = (*l).max(ctx.now());
        });
    }
    sim.run();
    let t = *last.lock();
    (t - align).as_us()
}

fn main() {
    let mut claims = Vec::new();

    // §2: hardware characteristics.
    let c = CostModel::default();
    let fixed = c.throughput_mb_s(TxMode::Fixed4);
    check(
        &mut claims,
        "§2",
        "fixed 4-byte packets give ~6.5 MB/s",
        (fixed - 6.5).abs() < 0.2,
        format!("model: {fixed:.2} MB/s"),
    );
    let var = c.throughput_mb_s(TxMode::Variable);
    check(
        &mut claims,
        "§2",
        "variable packets give ~16.7 MB/s",
        (var - 16.7).abs() < 1.0,
        format!("model: {var:.2} MB/s"),
    );
    check(
        &mut claims,
        "§2",
        "hop latency 250-800 ns; writes replicate in bounded time",
        (250..=800).contains(&c.hop_ns),
        format!("model hop: {} ns", c.hop_ns),
    );

    // §2: non-coherence.
    {
        let mut sim = Simulation::new();
        let cfg = RingConfig {
            track_provenance: true,
            ..Default::default()
        };
        let ring = Ring::with_config(&sim.handle(), 4, 64, CostModel::default(), cfg);
        let a = ring.nic(0);
        let b = ring.nic(2);
        sim.spawn("a", move |ctx| a.write_word(ctx, 5, 1));
        sim.spawn("b", move |ctx| b.write_word(ctx, 5, 2));
        sim.run();
        let finals: Vec<u32> = (0..4).map(|n| ring.snapshot(n)[5]).collect();
        let disagree = finals.iter().any(|&v| v != finals[0]);
        check(
            &mut claims,
            "§2",
            "memory is shared but NOT coherent (concurrent writers can disagree)",
            disagree,
            format!("final values per node: {finals:?}"),
        );
    }

    // §5: headline latencies.
    let b0 = bbp_one_way(0);
    check(
        &mut claims,
        "§5",
        "0-byte BBP message in ~6.5 µs",
        (b0 - 6.5).abs() < 1.0,
        format!("{b0:.2} µs"),
    );
    let b4 = bbp_one_way(4);
    check(
        &mut claims,
        "§5",
        "4-byte BBP message in ~7.8 µs",
        (b4 - 7.8).abs() < 1.2,
        format!("{b4:.2} µs"),
    );
    let m0 = mpi_one_way(|h| MpiWorld::scramnet(h, 4), 0);
    check(
        &mut claims,
        "§5",
        "0-byte MPI message in ~44 µs",
        (m0 - 44.0).abs() < 7.0,
        format!("{m0:.1} µs"),
    );
    check(
        &mut claims,
        "§5",
        "MPI adds (roughly) constant overhead over the API",
        (m0 - b0) > 30.0 && (m0 - b0) < 55.0,
        format!("layer tax at 0 B: {:.1} µs", m0 - b0),
    );

    // §5: SCRAMNet wins short messages vs Fast Ethernet / ATM at MPI level.
    let fe0 = mpi_one_way(|h| MpiWorld::fast_ethernet(h, 4), 16);
    let atm0 = mpi_one_way(|h| MpiWorld::atm(h, 4), 16);
    let scr16 = mpi_one_way(|h| MpiWorld::scramnet(h, 4), 16);
    check(
        &mut claims,
        "§5",
        "short messages: SCRAMNet beats Fast Ethernet and ATM",
        scr16 < fe0 && scr16 < atm0,
        format!("16 B: SCR {scr16:.0} µs, FastE {fe0:.0} µs, ATM {atm0:.0} µs"),
    );
    // ... and loses bulk (complementarity, §7).
    let scr8k = mpi_one_way(|h| MpiWorld::scramnet(h, 4), 8192);
    let fe8k = mpi_one_way(|h| MpiWorld::fast_ethernet(h, 4), 8192);
    check(
        &mut claims,
        "§7",
        "bulk messages: the commodity network wins (complementary strengths)",
        fe8k < scr8k,
        format!("8 KB: SCR {scr8k:.0} µs, FastE {fe8k:.0} µs"),
    );

    // §5: broadcast adds little; barriers order correctly.
    let p2p = bbp_one_way(4);
    let bcast = {
        let mut sim = Simulation::new();
        let cluster = BbpCluster::new(&sim.handle(), BbpConfig::for_nodes(4));
        let last: Arc<Mutex<Time>> = Arc::new(Mutex::new(0));
        let mut root = cluster.endpoint(0);
        sim.spawn("root", move |ctx| {
            root.mcast(ctx, &[1, 2, 3], b"beef").unwrap()
        });
        for r in 1..4 {
            let mut ep = cluster.endpoint(r);
            let last = Arc::clone(&last);
            sim.spawn(format!("r{r}"), move |ctx| {
                let _ = ep.recv(ctx, 0);
                let mut l = last.lock();
                *l = (*l).max(ctx.now());
            });
        }
        sim.run();
        let t = *last.lock();
        t.as_us()
    };
    check(
        &mut claims,
        "§5",
        "4-node broadcast adds very little over point-to-point",
        bcast - p2p < 3.0,
        format!("bcast {bcast:.1} µs vs p2p {p2p:.1} µs"),
    );
    let native = barrier_us(|h| MpiWorld::scramnet(h, 4), 4);
    let p2p_bar = barrier_us(
        |h| {
            let mut w = MpiWorld::scramnet(h, 4);
            w.set_collectives(CollectiveImpl::PointToPoint);
            w
        },
        4,
    );
    let fe_bar = barrier_us(|h| MpiWorld::fast_ethernet(h, 4), 4);
    check(
        &mut claims,
        "§5",
        "barrier: native multicast << SCRAMNet p2p << Fast Ethernet",
        native < p2p_bar && p2p_bar < fe_bar,
        format!("{native:.0} / {p2p_bar:.0} / {fe_bar:.0} µs"),
    );

    // Print the scorecard.
    println!("executable walkthrough of the paper's claims\n");
    let mut passed = 0;
    for c in &claims {
        let mark = if c.pass { "PASS" } else { "FAIL" };
        if c.pass {
            passed += 1;
        }
        println!("[{mark}] {:>3}  {:<62} {}", c.section, c.text, c.detail);
    }
    println!("\n{passed}/{} claims reproduce", claims.len());
    assert_eq!(passed, claims.len(), "a paper claim failed to reproduce");
}
