//! Shared-memory programming on SCRAMNet — the style the network was
//! built for before the BillBoard Protocol existed (paper §1–2: aircraft
//! simulators, process control). Four stations cooperate on a shared
//! world state using the `shmem` primitives:
//!
//! - each station owns a **single-writer region** with its aircraft's
//!   position (no locks needed — the BBP trick at the application level);
//! - a shared configuration block (weather) is updated under a
//!   **bakery lock** by whichever station takes command;
//! - a **distributed counter** tallies frames simulated cluster-wide;
//! - an **event flag** broadcasts the RUN→FREEZE mode switch, consumed
//!   via NIC interrupts;
//! - a **flag barrier** closes each epoch.
//!
//! Run with: `cargo run --release --example shared_flight_state`

use std::sync::Arc;

use parking_lot::Mutex;
use scramnet_cluster::des::{us, Simulation, TimeExt};
use scramnet_cluster::scramnet::{CostModel, Ring, RingConfig, Word};
use scramnet_cluster::shmem::{BakeryLock, DistributedCounter, EventFlag, SenseBarrier};

const STATIONS: usize = 4;
const EPOCHS: u32 = 50;

// Memory map (word offsets).
const LOCK_AT: usize = 0; // 2*STATIONS words
const BARRIER_AT: usize = 8; // STATIONS words
const COUNTER_AT: usize = 12; // STATIONS words
const MODE_FLAG: usize = 16; // 1 word, owner = station 0
const WEATHER_AT: usize = 17; // 2 words (wind dir/speed), lock-protected
const POSITIONS_AT: usize = 20; // 3 words per station, single-writer

const MODE_RUN: Word = 1;
const MODE_FREEZE: Word = 2;

fn main() {
    let mut sim = Simulation::new();
    let cfg = RingConfig {
        track_provenance: true,
        ..Default::default()
    };
    let ring = Ring::with_config(&sim.handle(), STATIONS, 64, CostModel::default(), cfg);

    let lock = BakeryLock::layout(LOCK_AT, STATIONS);
    let barrier = SenseBarrier::layout(BARRIER_AT, STATIONS);
    let counter = DistributedCounter::layout(COUNTER_AT, STATIONS);
    let mode = EventFlag::layout(MODE_FLAG, 0);

    let weather_log = Arc::new(Mutex::new(Vec::new()));
    let freeze_times = Arc::new(Mutex::new(Vec::new()));

    for station in 0..STATIONS {
        let nic = ring.nic(station);
        let mut lock_h = lock.handle(nic.clone());
        let mut barrier_h = barrier.handle(nic.clone());
        let mut counter_h = counter.handle(nic.clone());
        let mut mode_h = mode.handle(nic.clone());
        let weather_log = Arc::clone(&weather_log);
        let freeze_times = Arc::clone(&freeze_times);
        sim.spawn(format!("station{station}"), move |ctx| {
            let sig = ctx.handle().new_signal();
            mode_h.arm_interrupt(sig);
            if station == 0 {
                mode_h.set(ctx, MODE_RUN);
            } else {
                mode_h.wait_value(ctx, MODE_RUN);
            }
            for epoch in 0..EPOCHS {
                // Integrate own aircraft: single-writer region, no lock.
                let base = POSITIONS_AT + 3 * station;
                nic.write_word(ctx, base, epoch); // x
                nic.write_word(ctx, base + 1, epoch * 2); // y
                nic.write_word(ctx, base + 2, 1000 + epoch); // alt
                ctx.advance(5_000); // 5 µs of flight-model math

                // Every 10th epoch, station (epoch/10 % 4) updates the
                // weather under the bakery lock.
                if epoch % 10 == 0 && (epoch / 10) as usize % STATIONS == station {
                    lock_h.with_lock(ctx, |ctx| {
                        nic.write_word(ctx, WEATHER_AT, epoch * 3 % 360);
                        nic.write_word(ctx, WEATHER_AT + 1, 5 + epoch % 20);
                    });
                }
                counter_h.add(ctx, 1);
                // Phase discipline: write phase | barrier | read phase |
                // barrier. The first barrier makes every station's epoch-e
                // writes visible (per-source FIFO: observing the flag
                // implies the earlier position writes landed); the second
                // keeps fast stations from starting epoch e+1 writes while
                // slow ones still read epoch e.
                barrier_h.wait(ctx);
                for s in 0..STATIONS {
                    let x = nic.read_word(ctx, POSITIONS_AT + 3 * s);
                    assert_eq!(x, epoch, "station {station} saw stale epoch from {s}");
                }
                if station == 0 && epoch % 10 == 0 {
                    let dir = nic.read_word(ctx, WEATHER_AT);
                    let speed = nic.read_word(ctx, WEATHER_AT + 1);
                    weather_log.lock().push((epoch, dir, speed));
                }
                barrier_h.wait(ctx);
            }
            // Station 0 freezes the session; everyone reacts via interrupt.
            if station == 0 {
                ctx.advance(us(50));
                mode_h.set(ctx, MODE_FREEZE);
            } else {
                mode_h.wait_value(ctx, MODE_FREEZE);
                freeze_times.lock().push(ctx.now());
            }
            // Final frame count, read after the ring quiesces.
            ctx.advance(us(20));
            let frames = counter_h.read(ctx);
            assert_eq!(frames, EPOCHS * STATIONS as u32);
        });
    }

    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
    // The provenance audit flags every multi-writer word. The ONLY ones
    // allowed are the lock-protected weather block: unlike the pure
    // single-writer regions, that block relies on the bakery lock for
    // its integrity — exactly the distinction between the two sharing
    // styles this example demonstrates.
    let mut offending: Vec<usize> = ring.conflicts().iter().map(|c| c.0).collect();
    offending.sort_unstable();
    offending.dedup();
    assert_eq!(
        offending,
        vec![WEATHER_AT, WEATHER_AT + 1],
        "multi-writer words outside the lock-protected block"
    );

    println!("shared flight state: {STATIONS} stations x {EPOCHS} epochs\n");
    println!("weather updates observed by station 0 (lock-protected block):");
    for (epoch, dir, speed) in weather_log.lock().iter() {
        println!("  epoch {epoch:>3}: wind {dir:>3}° at {speed:>2} kt");
    }
    let ft = freeze_times.lock();
    println!(
        "\nfreeze propagated to {} stations via NIC interrupt",
        ft.len()
    );
    println!(
        "total frames counted cluster-wide: {}",
        EPOCHS * STATIONS as u32
    );
    println!(
        "simulation finished at {}; only the lock-protected weather block is multi-writer",
        report.end_time.pretty()
    );
}
