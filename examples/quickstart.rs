//! Quickstart: a 4-node SCRAMNet cluster in a deterministic simulation.
//!
//! Demonstrates the three layers of the reproduction:
//!  1. raw replicated memory (`scramnet`),
//!  2. the BillBoard Protocol (`bbp`) with point-to-point and multicast,
//!  3. MPI (`smpi`) with native-multicast collectives.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use parking_lot::Mutex;
use scramnet_cluster::bbp::{BbpCluster, BbpConfig};
use scramnet_cluster::des::{Simulation, TimeExt};
use scramnet_cluster::smpi::MpiWorld;

fn main() {
    raw_memory();
    billboard_protocol();
    mpi_collectives();
}

/// Layer 1: a store on one node appears in every node's NIC bank.
fn raw_memory() {
    println!("== layer 1: replicated shared memory ==");
    let mut sim = Simulation::new();
    let ring = scramnet_cluster::scramnet::Ring::new(
        &sim.handle(),
        4,
        1024,
        scramnet_cluster::scramnet::CostModel::default(),
    );
    let writer = ring.nic(0);
    sim.spawn("writer", move |ctx| {
        writer.write_word(ctx, 42, 0xCAFE);
        println!(
            "  node 0 stored 0xCAFE at word 42 at t={}",
            ctx.now().pretty()
        );
    });
    for node in 1..4 {
        let nic = ring.nic(node);
        sim.spawn(format!("reader{node}"), move |ctx| {
            ctx.wait_until(scramnet_cluster::des::us(20));
            let v = nic.read_word(ctx, 42);
            println!("  node {node} reads 0x{v:X} from its own bank");
            assert_eq!(v, 0xCAFE);
        });
    }
    sim.run();
}

/// Layer 2: zero-copy message passing and single-step multicast.
fn billboard_protocol() {
    println!("\n== layer 2: the BillBoard Protocol ==");
    let mut sim = Simulation::new();
    let cluster = BbpCluster::new(&sim.handle(), BbpConfig::for_nodes(4));
    let recv_times = Arc::new(Mutex::new(Vec::new()));

    let mut root = cluster.endpoint(0);
    sim.spawn("root", move |ctx| {
        root.send(ctx, 1, b"point-to-point hello").unwrap();
        root.mcast(ctx, &[1, 2, 3], b"multicast hello").unwrap();
    });
    for r in 1..4 {
        let mut ep = cluster.endpoint(r);
        let times = Arc::clone(&recv_times);
        sim.spawn(format!("node{r}"), move |ctx| {
            if r == 1 {
                let m = ep.recv(ctx, 0).unwrap();
                println!(
                    "  node 1 got '{}' at {}",
                    String::from_utf8_lossy(&m),
                    ctx.now().pretty()
                );
            }
            let m = ep.recv(ctx, 0).unwrap();
            assert_eq!(m, b"multicast hello");
            times.lock().push((r, ctx.now()));
        });
    }
    sim.run();
    for (r, t) in recv_times.lock().iter() {
        println!("  node {r} got the multicast at {}", t.pretty());
    }
}

/// Layer 3: MPI with the paper's native collectives.
fn mpi_collectives() {
    println!("\n== layer 3: MPI over the BillBoard Protocol ==");
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 4);
    for rank in 0..4 {
        let mut mpi = world.proc(rank);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let comm = mpi.comm_world();
            // Broadcast rides bbp_Mcast: one post, three flag writes.
            let data = (mpi.rank() == 0).then_some(&b"model state v1"[..]);
            let state = mpi.bcast(ctx, &comm, 0, data);
            assert_eq!(state, b"model state v1");
            // Allreduce a local measurement.
            let sum = mpi.allreduce(
                ctx,
                &comm,
                scramnet_cluster::smpi::ReduceOp::Sum,
                &[mpi.rank() as f64],
            );
            mpi.barrier(ctx, &comm);
            if mpi.rank() == 0 {
                println!("  allreduce sum across ranks = {} (expect 6)", sum[0]);
                println!("  all ranks passed the barrier by t={}", ctx.now().pretty());
            }
        });
    }
    let report = sim.run();
    assert!(report.is_clean());
    println!(
        "  simulation finished after {} scheduler dispatches",
        report.dispatches
    );
}
