//! Dual-ring fault tolerance: SCRAMNet's insertion registers can be
//! switched out ("bypassed") when a node dies, healing the ring around
//! it. This example runs steady point-to-point traffic among four nodes,
//! bypasses node 2 mid-run, shows the survivors keep communicating (with
//! *lower* hop latency across the bypass switch), then rejoins the node
//! and demonstrates why a rejoined bank must resynchronize before use.
//!
//! Run with: `cargo run --release --example fault_bypass`

use std::sync::Arc;

use parking_lot::Mutex;
use scramnet_cluster::bbp::{BbpCluster, BbpConfig};
use scramnet_cluster::des::{ms, Simulation, TimeExt};

fn main() {
    let mut sim = Simulation::new();
    let cluster = BbpCluster::new(&sim.handle(), BbpConfig::for_nodes(4));
    let ring = cluster.ring();

    let log = Arc::new(Mutex::new(Vec::<String>::new()));

    // Node 0 streams sequence numbers to node 3 (the path 0→1→2→3 crosses
    // node 2's position) throughout the whole run.
    let mut tx = cluster.endpoint(0);
    sim.spawn("sender", move |ctx| {
        for seq in 0..60u32 {
            tx.send(ctx, 3, &seq.to_le_bytes()).unwrap();
            ctx.wait_until(ms(seq as u64 + 1));
        }
    });
    let mut rx = cluster.endpoint(3);
    let log_rx = Arc::clone(&log);
    sim.spawn("receiver", move |ctx| {
        let mut latencies_healthy = Vec::new();
        let mut latencies_bypassed = Vec::new();
        for seq in 0..60u32 {
            let m = rx.recv(ctx, 0).unwrap();
            assert_eq!(u32::from_le_bytes(m.try_into().unwrap()), seq);
            let sent_at = ms(seq as u64); // sender paces on millisecond marks
            let latency = ctx.now().saturating_sub(sent_at);
            if (20..40).contains(&seq) {
                latencies_bypassed.push(latency);
            } else if seq < 20 {
                latencies_healthy.push(latency);
            }
        }
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64 / 1000.0;
        log_rx.lock().push(format!(
            "receiver: all 60 messages delivered in order; mean latency healthy {:.2} µs, \
             during bypass {:.2} µs (bypass switch is faster than a live insertion register)",
            mean(&latencies_healthy),
            mean(&latencies_bypassed)
        ));
    });

    // The failing node: receives until the fault, misses traffic while
    // bypassed.
    let mut victim = cluster.endpoint(2);
    let log_victim = Arc::clone(&log);
    sim.spawn("victim", move |ctx| {
        ctx.wait_until(ms(45));
        // After rejoining, its bank missed the bypassed window; the BBP
        // flags written during the outage never reached it.
        let waiting = victim.msg_avail(ctx);
        log_victim.lock().push(format!(
            "victim after rejoin: msg_avail = {waiting} (traffic sent while bypassed is lost \
             to this node; a rejoining node must resynchronize at the application level)"
        ));
    });

    // Fault controller: bypass node 2 at t=20 ms, rejoin at t=40 ms.
    {
        let handle = sim.handle();
        let ring2 = cluster.ring().clone();
        let ring3 = ring2.clone();
        let log_a = Arc::clone(&log);
        let log_b = Arc::clone(&log);
        handle.schedule_at(ms(20), move |t| {
            ring2.bypass_node(2);
            log_a
                .lock()
                .push(format!("t={}: node 2 bypassed (ring healed)", t.pretty()));
        });
        handle.schedule_at(ms(40), move |t| {
            ring3.rejoin_node(2);
            log_b
                .lock()
                .push(format!("t={}: node 2 rejoined", t.pretty()));
        });
    }

    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);

    println!("dual-ring bypass demo (4 nodes, node 2 fails from 20 ms to 40 ms)\n");
    for line in log.lock().iter() {
        println!("  {line}");
    }
    println!(
        "\nring carried {} words total",
        cluster.ring().stats().words_carried
    );
    assert!(!ring.is_bypassed(2));
}
