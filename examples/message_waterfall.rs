//! Per-message latency waterfall of a 4-node `MPI_Bcast` on SCRAMNet.
//!
//! Runs the instrumented broadcast with message-lifecycle tracing
//! enabled, reconstructs each traced message's journey — MPI send entry,
//! BBP descriptor write, ring injection, per-hop transit, flag-word set,
//! receive match, delivery — and prints it as a waterfall with per-stage
//! deltas. Also writes the flow-phase Chrome trace next to the terminal
//! output so the same chains can be inspected in Perfetto:
//!
//! ```text
//! cargo run --example message_waterfall [-- trace.json]
//! ```

use bench::{mpi_bcast_events, MpiNet};
use smpi::CollectiveImpl;

const LEN: usize = 64;
const NODES: usize = 4;

fn main() {
    let (bcast_us, events) = mpi_bcast_events(MpiNet::Scramnet, LEN, NODES, CollectiveImpl::Native);
    println!("MPI_Bcast {LEN} B on {NODES} nodes: {bcast_us:.1} µs to the last receiver\n");

    let waterfalls = des::obs::message_waterfalls(&events);
    for w in &waterfalls {
        println!(
            "message {:#012x} from node {}: {:.1} µs end to end, {} checkpoints",
            w.id,
            w.src,
            w.total_ns() as f64 / 1000.0,
            w.steps.len()
        );
        let base = w.steps.first().map_or(0, |s| s.time);
        let mut prev = base;
        for s in &w.steps {
            println!(
                "  +{:>8.2} µs  (Δ {:>7.2})  node {}  {:<16} arg={}",
                s.time.saturating_sub(base) as f64 / 1000.0,
                s.time.saturating_sub(prev) as f64 / 1000.0,
                s.node,
                s.stage.name(),
                s.arg
            );
            prev = s.time;
        }
        println!();
    }

    if let Some(path) = std::env::args().nth(1) {
        let trace = des::obs::chrome_trace_json(&events);
        std::fs::write(&path, trace).expect("write trace");
        println!("Chrome trace (spans + message flows) written to {path}");
    }
}
