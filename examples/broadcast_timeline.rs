//! Visualizing WHY the native broadcast wins (paper §3): an ASCII
//! timeline of when each rank's `MPI_Bcast` completes under the binomial
//! point-to-point tree versus the single-step hardware multicast, on an
//! 8-node SCRAMNet ring.
//!
//! Run with: `cargo run --release --example broadcast_timeline`

use std::sync::Arc;

use parking_lot::Mutex;
use scramnet_cluster::des::{ms, SimHandle, Simulation, Time, TimeExt};
use scramnet_cluster::smpi::{CollectiveImpl, MpiWorld};

const RANKS: usize = 8;
const PAYLOAD: usize = 64;

/// Per-rank completion times of one aligned broadcast.
fn run(build: impl Fn(&SimHandle) -> MpiWorld) -> Vec<Time> {
    let mut sim = Simulation::new();
    let world = build(&sim.handle());
    let align = ms(5);
    let times: Arc<Mutex<Vec<(usize, Time)>>> = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..RANKS {
        let mut mpi = world.proc(rank);
        let times = Arc::clone(&times);
        sim.spawn(format!("r{rank}"), move |ctx| {
            let comm = mpi.comm_world();
            // Warm-up round.
            let warm = (rank == 0).then(|| vec![0u8; 4]);
            let _ = mpi.bcast(ctx, &comm, 0, warm.as_deref());
            ctx.wait_until(align);
            let data = (rank == 0).then(|| vec![0xEEu8; PAYLOAD]);
            let out = mpi.bcast(ctx, &comm, 0, data.as_deref());
            assert_eq!(out.len(), PAYLOAD);
            times.lock().push((rank, ctx.now() - align));
        });
    }
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
    let mut v = times.lock().clone();
    v.sort_by_key(|&(r, _)| r);
    v.into_iter().map(|(_, t)| t).collect()
}

fn draw(label: &str, times: &[Time], scale: Time) {
    println!("\n{label}");
    for (rank, &t) in times.iter().enumerate() {
        let cols = (t / scale) as usize;
        let bar = "#".repeat(cols.min(70));
        println!(
            "  rank {rank}: {bar}{} {}",
            if cols > 70 { "…" } else { "" },
            t.pretty()
        );
    }
}

fn main() {
    println!("when does each of {RANKS} ranks finish one {PAYLOAD}-byte MPI_Bcast from rank 0?");
    let p2p = run(|h| {
        let mut w = MpiWorld::scramnet(h, RANKS);
        w.set_collectives(CollectiveImpl::PointToPoint);
        w
    });
    let native = run(|h| MpiWorld::scramnet(h, RANKS));
    let max = *p2p.iter().chain(&native).max().unwrap();
    let scale = (max / 68).max(1);
    draw(
        "binomial point-to-point tree (stock MPICH): log2(n) sequential hops",
        &p2p,
        scale,
    );
    draw(
        "native bbp_Mcast (the paper's §4 algorithm): one post, n-1 flag writes",
        &native,
        scale,
    );
    let worst_p2p = *p2p.iter().max().unwrap();
    let worst_native = *native.iter().max().unwrap();
    println!(
        "\nlast receiver: {} (tree) vs {} (native) — {:.1}x",
        worst_p2p.pretty(),
        worst_native.pretty(),
        worst_p2p as f64 / worst_native as f64
    );
    let spread_native = *native[1..].iter().max().unwrap() - *native[1..].iter().min().unwrap();
    println!(
        "native receivers finish within {} of each other — the paper's\n\
         'potentially, all the receivers could receive the multicast message\n\
         simultaneously' in action",
        spread_native.pretty()
    );
}
