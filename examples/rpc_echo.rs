//! RPC echo: N clients hammer one server through the zero-copy
//! request/reply layer.
//!
//! Each client opens a few channels with a small credit grant and posts
//! echo requests (a mix of high and normal priority); the server
//! dispatches them through one `MessageQueue`, writes the reply over the
//! request buffer *in place*, and flushes batches with one doorbell per
//! destination. At the end the example prints the p50/p99/p999 service
//! latency and the credit-stall counters that show the backpressure
//! actually engaged.
//!
//! Run with: `cargo run --release --example rpc_echo`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use scramnet_cluster::bbp::{BbpCluster, BbpConfig, CreditConfig};
use scramnet_cluster::des::{self, Simulation};
use scramnet_cluster::obs::LogHistogram;
use scramnet_cluster::rpc::{MessageQueue, Priority, RpcClient, RpcConfig};

const CLIENTS: usize = 6;
const CHANNELS: u32 = 8;
const CREDITS: u32 = 4;
const REQUESTS_PER_CLIENT: usize = 400;
const BODY: usize = 48;

fn main() {
    let mut sim = Simulation::new();
    let nodes = CLIENTS + 1;
    let mut cfg = BbpConfig::for_nodes(nodes);
    cfg.bufs_per_proc = 32;
    cfg.data_words = 8192;
    // Fail-fast transport credits: a saturated client sheds at the send
    // gate instead of stalling inside the transport.
    cfg.credit = Some(CreditConfig {
        per_peer: cfg.bufs_per_proc as u32,
        fail_fast: true,
    });
    let cluster = BbpCluster::new(&sim.handle(), cfg);

    let latency = Arc::new(LogHistogram::new());
    let totals = Arc::new(Mutex::new((0u64, 0u64, 0u64))); // sent, completed, shed
    let done = Arc::new(AtomicUsize::new(0));

    for client in 1..=CLIENTS {
        let ep = cluster.endpoint(client);
        let latency = Arc::clone(&latency);
        let totals = Arc::clone(&totals);
        let done = Arc::clone(&done);
        sim.spawn(format!("client{client}"), move |ctx| {
            let mut cl = RpcClient::new(ep, 0, CHANNELS, CREDITS, BODY);
            let mut body = [0u8; BODY];
            for i in 0..REQUESTS_PER_CLIENT {
                let ch = (i as u32) % CHANNELS;
                // Every fifth request is latency-critical.
                let class = if i % 5 == 0 {
                    Priority::High
                } else {
                    Priority::Normal
                };
                body[0] = i as u8;
                let _ = cl.try_request(ctx, ch, class, &body);
                // Three quarters of the run is paced below the server's
                // capacity; the last quarter bursts well past it, so the
                // credit gates visibly engage.
                let gap = if i < REQUESTS_PER_CLIENT * 3 / 4 {
                    des::us(200)
                } else {
                    des::us(10)
                };
                ctx.advance(gap);
                cl.poll_replies(ctx);
            }
            // Drain everything still in flight.
            while cl.total_outstanding() > 0 {
                ctx.advance(des::us(20));
                cl.poll_replies(ctx);
            }
            latency.merge(&cl.service_hist());
            let st = cl.stats();
            let mut t = totals.lock();
            t.0 += st.sent;
            t.1 += st.completed;
            t.2 += st.shed + st.transport_shed;
            done.fetch_add(1, Ordering::SeqCst);
        });
    }

    let server_ep = cluster.endpoint(0);
    let done_server = Arc::clone(&done);
    let server_stats = Arc::new(Mutex::new(None));
    let server_out = Arc::clone(&server_stats);
    sim.spawn("server", move |ctx| {
        let mut mq = MessageQueue::new(
            server_ep,
            RpcConfig {
                pool: 32,
                body_capacity: BODY,
                max_high_streak: 4,
            },
        );
        loop {
            mq.poll(ctx);
            while let Some(mut buf) = mq.dispatch(ctx) {
                // Echo: flip every body byte in place — the reply reuses
                // the request buffer, no copy, no allocation.
                for b in buf.body_mut().iter_mut() {
                    *b = !*b;
                }
                let n = buf.body().len();
                buf.set_body_len(n);
                mq.reply_later(buf);
            }
            mq.flush(ctx).expect("reply flush failed");
            if done_server.load(Ordering::SeqCst) == CLIENTS
                && mq.queued() == 0
                && mq.in_flight() == 0
            {
                break;
            }
            ctx.advance(des::us(5));
        }
        *server_out.lock() = Some((mq.stats(), mq.endpoint().stats().clone()));
    });

    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);

    let (sent, completed, shed) = *totals.lock();
    let (qs, es) = server_stats.lock().take().expect("server reported");
    println!("== rpc echo: {CLIENTS} clients x {CHANNELS} channels -> 1 server ==");
    println!("  requests: {sent} sent, {completed} completed, {shed} shed at credit gates");
    println!("\n  service latency (request post -> matched reply)");
    println!("    p50   {:>8.1} µs", latency.quantile(0.50) as f64 / 1e3);
    println!("    p99   {:>8.1} µs", latency.quantile(0.99) as f64 / 1e3);
    println!("    p999  {:>8.1} µs", latency.quantile(0.999) as f64 / 1e3);
    println!("\n  server queue");
    println!(
        "    {} dispatched ({} high / {} normal), max residency {} of 32 buffers",
        qs.dispatched, qs.high_dispatched, qs.normal_dispatched, qs.max_residency
    );
    println!("\n  backpressure counters");
    println!("    server credit stalls       {}", es.credit_stalls);
    println!(
        "    server flag writes saved   {}",
        es.flag_writes_coalesced
    );
    assert_eq!(completed, sent, "every accepted request must complete");
}
