//! A real-time telemetry bus — SCRAMNet's home turf (the paper §1 lists
//! aircraft simulators, process control, telemetry and robotics as the
//! network's original applications).
//!
//! One producer (a simulated flight-dynamics model) publishes a sensor
//! frame every 500 µs with `bbp_Mcast` to three consumers (instructor
//! station, motion platform, data recorder). Consumers use the
//! **interrupt-driven receive** extension so they idle between frames
//! instead of burning their CPUs polling, and each checks a 100 µs
//! delivery deadline. The run reports per-consumer latency statistics
//! and deadline misses.
//!
//! Run with: `cargo run --release --example telemetry_bus`

use std::sync::Arc;

use parking_lot::Mutex;
use scramnet_cluster::bbp::{BbpCluster, BbpConfig, RecvMode};
use scramnet_cluster::des::{us, Simulation, TimeExt};

const FRAMES: u32 = 200;
const PERIOD_US: u64 = 500;
const DEADLINE_US: u64 = 100;
const CONSUMERS: [&str; 3] = ["instructor-station", "motion-platform", "data-recorder"];

/// A telemetry frame: sequence number + timestamp + 12 f32 channels.
fn frame(seq: u32, t_us: u64) -> Vec<u8> {
    let mut f = Vec::with_capacity(4 + 8 + 12 * 4);
    f.extend_from_slice(&seq.to_le_bytes());
    f.extend_from_slice(&t_us.to_le_bytes());
    for ch in 0..12u32 {
        let v = (seq as f32 * 0.1 + ch as f32).sin();
        f.extend_from_slice(&v.to_le_bytes());
    }
    f
}

struct ConsumerReport {
    name: &'static str,
    latencies_us: Vec<f64>,
    deadline_misses: u32,
}

fn main() {
    let mut sim = Simulation::new();
    let mut cfg = BbpConfig::for_nodes(4);
    cfg.recv_mode = RecvMode::Interrupt; // idle between frames
    let cluster = BbpCluster::new(&sim.handle(), cfg);

    // Producer on node 0: hard 500 µs publication period.
    let mut producer = cluster.endpoint(0);
    sim.spawn("flight-model", move |ctx| {
        for seq in 0..FRAMES {
            let publish_at = us(seq as u64 * PERIOD_US);
            ctx.wait_until(publish_at);
            let f = frame(seq, ctx.now() / 1_000);
            producer.mcast(ctx, &[1, 2, 3], &f).unwrap();
        }
    });

    let reports: Arc<Mutex<Vec<ConsumerReport>>> = Arc::new(Mutex::new(Vec::new()));
    for (i, name) in CONSUMERS.iter().enumerate() {
        let mut ep = cluster.endpoint(i + 1);
        let reports = Arc::clone(&reports);
        sim.spawn(*name, move |ctx| {
            let mut latencies = Vec::with_capacity(FRAMES as usize);
            let mut misses = 0;
            for seq in 0..FRAMES {
                let f = ep.recv(ctx, 0).unwrap();
                let got_seq = u32::from_le_bytes(f[0..4].try_into().unwrap());
                assert_eq!(got_seq, seq, "frames must arrive in order, no loss");
                let published = us(seq as u64 * PERIOD_US);
                let latency = ctx.now() - published;
                if latency > us(DEADLINE_US) {
                    misses += 1;
                }
                latencies.push(latency.as_us());
            }
            reports.lock().push(ConsumerReport {
                name,
                latencies_us: latencies,
                deadline_misses: misses,
            });
        });
    }

    let report = sim.run();
    assert!(report.is_clean(), "bus deadlocked: {:?}", report.deadlocked);

    println!(
        "telemetry bus: {FRAMES} frames @ {PERIOD_US} µs period, 56-byte frames, \
         interrupt-driven consumers, {DEADLINE_US} µs deadline\n"
    );
    println!(
        "{:>20} {:>10} {:>10} {:>10} {:>10}",
        "consumer", "min µs", "mean µs", "max µs", "misses"
    );
    let mut all = reports.lock();
    all.sort_by_key(|r| r.name);
    for r in all.iter() {
        let min = r.latencies_us.iter().cloned().fold(f64::MAX, f64::min);
        let max = r.latencies_us.iter().cloned().fold(f64::MIN, f64::max);
        let mean = r.latencies_us.iter().sum::<f64>() / r.latencies_us.len() as f64;
        println!(
            "{:>20} {:>10.1} {:>10.1} {:>10.1} {:>10}",
            r.name, min, mean, max, r.deadline_misses
        );
        assert_eq!(r.deadline_misses, 0, "{} missed deadlines", r.name);
    }
    println!(
        "\nall consumers met every deadline; total virtual time {}",
        report.end_time.pretty()
    );
}
