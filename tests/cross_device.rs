//! The same MPI program must compute identical results over every
//! device (SCRAMNet/BBP, Fast Ethernet, ATM) and with both collective
//! implementations — only the virtual clock differs. Also checks the
//! paper's headline performance ordering between the stacks.

use std::sync::Arc;

use parking_lot::Mutex;
use scramnet_cluster::des::{SimHandle, Simulation, Time};
use scramnet_cluster::smpi::{CollectiveImpl, MpiWorld, ReduceOp};

/// A composite MPI program touching p2p, collectives and subcomms.
/// Returns (per-rank result vector, end time).
fn composite_program(build: impl Fn(&SimHandle) -> MpiWorld) -> (Vec<f64>, Time) {
    let mut sim = Simulation::new();
    let world = build(&sim.handle());
    let n = world.nprocs();
    let results = Arc::new(Mutex::new(vec![0.0f64; n]));
    for rank in 0..n {
        let mut mpi = world.proc(rank);
        let results = Arc::clone(&results);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let comm = mpi.comm_world();
            let me = comm.rank();
            // Ring shift.
            let right = (me + 1) % comm.size();
            let left = (me + comm.size() - 1) % comm.size();
            let (_, m) = mpi
                .sendrecv(ctx, &comm, right, 1, &[me as u8], Some(left), Some(1))
                .unwrap();
            let neighbour = m[0] as f64;
            // Allreduce.
            let sum = mpi.allreduce(ctx, &comm, ReduceOp::Sum, &[neighbour])[0];
            // Split into odd/even, reduce within.
            let sub = mpi
                .comm_split(ctx, &comm, (me % 2) as i64, me as i64)
                .unwrap();
            let sub_sum = mpi.allreduce(ctx, &sub, ReduceOp::Sum, &[me as f64])[0];
            // Broadcast a correction from world root.
            let corr = mpi.bcast(ctx, &comm, 0, (me == 0).then_some(&[7u8][..]));
            mpi.barrier(ctx, &comm);
            results.lock()[me] = sum * 100.0 + sub_sum + corr[0] as f64;
        });
    }
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
    let r = results.lock().clone();
    (r, report.end_time)
}

#[test]
fn all_stacks_compute_identical_results() {
    let (scr, t_scr) = composite_program(|h| MpiWorld::scramnet(h, 4));
    let (scr_p2p, _) = composite_program(|h| {
        let mut w = MpiWorld::scramnet(h, 4);
        w.set_collectives(CollectiveImpl::PointToPoint);
        w
    });
    let (eth, t_eth) = composite_program(|h| MpiWorld::fast_ethernet(h, 4));
    let (atm, t_atm) = composite_program(|h| MpiWorld::atm(h, 4));

    assert_eq!(scr, scr_p2p, "native vs p2p collectives disagree");
    assert_eq!(scr, eth, "SCRAMNet vs Ethernet disagree");
    assert_eq!(scr, atm, "SCRAMNet vs ATM disagree");

    // Performance ordering on this latency-bound program (paper's core
    // claim for short messages).
    assert!(
        t_scr < t_eth,
        "SCRAMNet ({t_scr}) should beat Ethernet ({t_eth})"
    );
    assert!(
        t_scr < t_atm,
        "SCRAMNet ({t_scr}) should beat ATM ({t_atm})"
    );
}

#[test]
fn native_collectives_accelerate_the_composite_program() {
    let (_, t_native) = composite_program(|h| MpiWorld::scramnet(h, 4));
    let (_, t_p2p) = composite_program(|h| {
        let mut w = MpiWorld::scramnet(h, 4);
        w.set_collectives(CollectiveImpl::PointToPoint);
        w
    });
    assert!(
        t_native < t_p2p,
        "native collectives ({t_native}) should beat p2p ({t_p2p})"
    );
}

#[test]
fn adi_direct_extension_is_faster_than_channel_interface() {
    use bbp::BbpConfig;
    use scramnet::CostModel;
    use smpi::SmpiCosts;
    let (r_ch, t_ch) = composite_program(|h| MpiWorld::scramnet(h, 4));
    let (r_adi, t_adi) = composite_program(|h| {
        MpiWorld::scramnet_with(
            h,
            BbpConfig::for_nodes(4),
            CostModel::default(),
            SmpiCosts::adi_direct(),
            CollectiveImpl::Native,
        )
    });
    assert_eq!(r_ch, r_adi);
    assert!(
        t_adi < t_ch,
        "ADI-direct ({t_adi}) should beat channel interface ({t_ch})"
    );
}

#[test]
fn per_rank_results_depend_on_rank() {
    // Sanity: the composite program actually distinguishes ranks (the
    // equality assertions above are not comparing constants).
    let (r, _) = composite_program(|h| MpiWorld::scramnet(h, 4));
    assert_eq!(r.len(), 4);
    assert!(
        r.windows(2).any(|w| w[0] != w[1]),
        "degenerate program: {r:?}"
    );
}
