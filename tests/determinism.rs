//! The whole stack is deterministic: identical programs produce
//! byte-identical schedules and identical virtual end times, run after
//! run. This is what makes the experiment tables reproducible.

use scramnet_cluster::bbp::{BbpCluster, BbpConfig};
use scramnet_cluster::des::rng::SimRng;
use scramnet_cluster::des::Simulation;
use scramnet_cluster::smpi::{MpiWorld, ReduceOp};

/// A moderately chaotic BBP workload driven by a seeded RNG: the traffic
/// plan (who sends what to whom, with what think time) is generated up
/// front so every receiver knows exactly how many messages to drain.
fn chaotic_bbp_run(seed: u64) -> (u64, u64, Vec<String>) {
    // Plan: per sender, a list of (dst, payload, think-time ns).
    let mut plans: Vec<Vec<(usize, Vec<u8>, u64)>> = Vec::new();
    let mut incoming = [0usize; 4];
    for rank in 0..4usize {
        let mut rng = SimRng::seeded(seed ^ rank as u64);
        let peers: Vec<usize> = (0..4).filter(|&p| p != rank).collect();
        let mut plan = Vec::new();
        for _ in 0..12 {
            let dst = peers[rng.index(peers.len())];
            let len = rng.below(200) as usize;
            let payload = rng.payload(len);
            let think = if rng.chance(0.3) { rng.below(5_000) } else { 0 };
            incoming[dst] += 1;
            plan.push((dst, payload, think));
        }
        plans.push(plan);
    }

    let mut sim = Simulation::new();
    sim.enable_trace();
    let cluster = BbpCluster::new(&sim.handle(), BbpConfig::for_nodes(4));
    for (rank, plan) in plans.into_iter().enumerate() {
        let mut ep = cluster.endpoint(rank);
        let expect = incoming[rank];
        sim.spawn(format!("p{rank}"), move |ctx| {
            for (dst, payload, think) in plan {
                ep.send(ctx, dst, &payload).unwrap();
                if think > 0 {
                    ctx.advance(think);
                }
            }
            for _ in 0..expect {
                let _ = ep.recv_any(ctx);
            }
        });
    }
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
    let trace: Vec<String> = sim.take_trace().iter().map(|e| e.to_string()).collect();
    (report.end_time, report.dispatches, trace)
}

#[test]
fn identical_runs_produce_identical_traces() {
    let (t1, d1, trace1) = chaotic_bbp_run(0xFEED);
    let (t2, d2, trace2) = chaotic_bbp_run(0xFEED);
    assert_eq!(t1, t2, "virtual end times differ");
    assert_eq!(d1, d2, "dispatch counts differ");
    assert_eq!(trace1.len(), trace2.len(), "trace lengths differ");
    for (i, (a, b)) in trace1.iter().zip(&trace2).enumerate() {
        assert_eq!(a, b, "traces diverge at entry {i}");
    }
}

#[test]
fn different_seeds_produce_different_schedules() {
    let (_, _, trace1) = chaotic_bbp_run(1);
    let (_, _, trace2) = chaotic_bbp_run(2);
    assert_ne!(
        trace1, trace2,
        "distinct seeds should explore distinct schedules"
    );
}

#[test]
fn mpi_collective_results_are_reproducible() {
    let run = || {
        let mut sim = Simulation::new();
        let world = MpiWorld::scramnet(&sim.handle(), 4);
        let result = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        for rank in 0..4 {
            let mut mpi = world.proc(rank);
            let result = std::sync::Arc::clone(&result);
            sim.spawn(format!("rank{rank}"), move |ctx| {
                let comm = mpi.comm_world();
                let v = mpi.allreduce(ctx, &comm, ReduceOp::Sum, &[mpi.rank() as f64 + 0.5]);
                mpi.barrier(ctx, &comm);
                if mpi.rank() == 0 {
                    result.lock().push((v[0], ctx.now()));
                }
            });
        }
        sim.run();
        let r = result.lock().clone();
        r[0]
    };
    let (v1, t1) = run();
    let (v2, t2) = run();
    assert_eq!(v1, 6.0 + 2.0);
    assert_eq!(v1, v2);
    assert_eq!(
        t1, t2,
        "identical collective schedules must take identical virtual time"
    );
}

#[test]
fn ethernet_worlds_are_deterministic_too() {
    let run = || {
        let mut sim = Simulation::new();
        let world = MpiWorld::fast_ethernet(&sim.handle(), 3);
        for rank in 0..3 {
            let mut mpi = world.proc(rank);
            sim.spawn(format!("rank{rank}"), move |ctx| {
                let comm = mpi.comm_world();
                for _ in 0..3 {
                    mpi.barrier(ctx, &comm);
                }
            });
        }
        sim.run().end_time
    };
    assert_eq!(run(), run());
}
