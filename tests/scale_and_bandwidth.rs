//! Large-ring correctness (SCRAMNet scales to 256 nodes; the paper's
//! testbed had 4) and end-to-end bandwidth validation against the
//! hardware's published throughput figures.

use std::sync::Arc;

use parking_lot::Mutex;
use scramnet_cluster::bbp::{BbpCluster, BbpConfig};
use scramnet_cluster::des::{Simulation, Time};
use scramnet_cluster::scramnet::TxMode;
use scramnet_cluster::smpi::{MpiWorld, ReduceOp};

#[test]
fn broadcast_on_a_64_node_ring() {
    let mut sim = Simulation::new();
    let mut cfg = BbpConfig::for_nodes(64);
    cfg.data_words = 256;
    let cluster = BbpCluster::new(&sim.handle(), cfg);
    let targets: Vec<usize> = (1..64).collect();
    let mut root = cluster.endpoint(0);
    sim.spawn("root", move |ctx| {
        root.mcast(ctx, &targets, b"ring-wide").unwrap();
    });
    for r in 1..64 {
        let mut ep = cluster.endpoint(r);
        sim.spawn(format!("r{r}"), move |ctx| {
            assert_eq!(ep.recv(ctx, 0).unwrap(), b"ring-wide");
        });
    }
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
}

#[test]
fn allreduce_on_16_ranks() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 16);
    for rank in 0..16 {
        let mut mpi = world.proc(rank);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let comm = mpi.comm_world();
            let s = mpi.allreduce(ctx, &comm, ReduceOp::Sum, &[mpi.rank() as f64]);
            assert_eq!(s, vec![120.0]);
            mpi.barrier(ctx, &comm);
        });
    }
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
}

/// Measure sustained one-directional BBP throughput by streaming a lot of
/// data and timing at the receiver.
fn measured_mb_s(mode: TxMode) -> f64 {
    let mut sim = Simulation::new();
    let mut cfg = BbpConfig::for_nodes(2);
    cfg.data_words = 16 * 1024;
    cfg.bufs_per_proc = 32;
    let cluster = BbpCluster::new(&sim.handle(), cfg);
    cluster.set_tx_mode(mode);
    let total_bytes = 512 * 1024usize;
    let chunk = 16 * 1024usize;
    let mut tx = cluster.endpoint(0);
    sim.spawn("tx", move |ctx| {
        let payload = vec![0xEEu8; chunk];
        for _ in 0..total_bytes / chunk {
            tx.send(ctx, 1, &payload).unwrap();
        }
    });
    let done: Arc<Mutex<Time>> = Arc::new(Mutex::new(0));
    let done2 = Arc::clone(&done);
    let mut rx = cluster.endpoint(1);
    sim.spawn("rx", move |ctx| {
        let mut got = 0usize;
        while got < total_bytes {
            got += rx.recv(ctx, 0).unwrap().len();
        }
        *done2.lock() = ctx.now();
    });
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
    let t = *done.lock();
    total_bytes as f64 / (t as f64 / 1e9) / 1e6
}

#[test]
fn fixed_mode_throughput_approaches_the_published_6_5_mb_s() {
    let mb_s = measured_mb_s(TxMode::Fixed4);
    // End-to-end includes receive-side PIO, so it lands under the wire
    // rate but must be in its neighbourhood.
    assert!(
        (4.0..=6.5).contains(&mb_s),
        "fixed-mode end-to-end throughput {mb_s:.2} MB/s"
    );
}

#[test]
fn variable_mode_throughput_approaches_the_published_16_7_mb_s() {
    let mb_s = measured_mb_s(TxMode::Variable);
    assert!(
        (8.0..=16.7).contains(&mb_s),
        "variable-mode end-to-end throughput {mb_s:.2} MB/s"
    );
    assert!(mb_s > measured_mb_s(TxMode::Fixed4) * 1.5);
}

#[test]
fn ethernet_stream_throughput_is_wire_limited() {
    use scramnet_cluster::netsim::{NetSpec, TcpCosts, TcpNet};
    let mut sim = Simulation::new();
    let net = TcpNet::new(
        &sim.handle(),
        NetSpec::fast_ethernet(2),
        TcpCosts::fast_ethernet(),
    );
    let (a, b) = net.socket_pair(0, 1);
    let total = 2 * 1024 * 1024usize;
    let chunk = 32 * 1024usize;
    sim.spawn("a", move |ctx| {
        let payload = vec![1u8; chunk];
        for _ in 0..total / chunk {
            a.send(ctx, &payload);
        }
    });
    let done: Arc<Mutex<Time>> = Arc::new(Mutex::new(0));
    let done2 = Arc::clone(&done);
    sim.spawn("b", move |ctx| {
        let mut got = 0usize;
        while got < total {
            got += b.recv(ctx).len();
        }
        *done2.lock() = ctx.now();
    });
    assert!(sim.run().is_clean());
    let t = *done.lock();
    let mb_s = total as f64 / (t as f64 / 1e9) / 1e6;
    // 100 Mb/s = 12.5 MB/s wire; stack costs and framing land it below.
    assert!(
        (6.0..=12.5).contains(&mb_s),
        "FastE streaming {mb_s:.2} MB/s"
    );
}
