//! The paper's §2 scaling path, end to end: the BillBoard Protocol and
//! the full MPI stack running unchanged across a two-level ring
//! hierarchy (writes cross leaf rings through backbone bridges).

use std::sync::Arc;

use parking_lot::Mutex;
use scramnet_cluster::bbp::{BbpCluster, BbpConfig};
use scramnet_cluster::des::{Simulation, Time, TimeExt};
use scramnet_cluster::scramnet::{CostModel, HierarchyConfig, RingHierarchy};
use scramnet_cluster::smpi::{BbpDevice, CollectiveImpl, Mpi, ReduceOp, SmpiCosts};

fn hierarchy(sim: &Simulation, leaves: usize, hosts: usize, words: usize) -> RingHierarchy {
    RingHierarchy::new(
        &sim.handle(),
        HierarchyConfig {
            leaves,
            hosts_per_leaf: hosts,
            words,
            bridge_ns: 2_000,
            cost: CostModel::default(),
            track_provenance: true,
        },
    )
}

fn bbp_endpoints(h: &RingHierarchy, config: &BbpConfig) -> Vec<scramnet_cluster::bbp::BbpEndpoint> {
    (0..h.hosts())
        .map(|id| BbpCluster::endpoint_over(h.nic(id), id, config.clone()))
        .collect()
}

#[test]
fn bbp_ping_pong_across_leaf_rings() {
    let mut sim = Simulation::new();
    let config = BbpConfig::for_nodes(6);
    let layout_words = scramnet_cluster::bbp::Layout::new(&config).total_words();
    let h = hierarchy(&sim, 2, 3, layout_words);
    let mut eps = bbp_endpoints(&h, &config);
    let mut far = eps.remove(5); // leaf 1
    let mut near = eps.remove(0); // leaf 0
    let rtt = Arc::new(Mutex::new(0u64));
    let rtt2 = Arc::clone(&rtt);
    sim.spawn("near", move |ctx| {
        let t0 = ctx.now();
        near.send(ctx, 5, b"across the bridge").unwrap();
        let back = near.recv(ctx, 5).unwrap();
        assert_eq!(back, b"and back");
        *rtt2.lock() = ctx.now() - t0;
    });
    sim.spawn("far", move |ctx| {
        let m = far.recv(ctx, 0).unwrap();
        assert_eq!(m, b"across the bridge");
        far.send(ctx, 0, b"and back").unwrap();
    });
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
    assert!(
        h.conflicts().is_empty(),
        "single-writer discipline held across rings"
    );
    let t: Time = *rtt.lock();
    // Crossing two bridges each way adds noticeable latency over the
    // ~15 µs same-ring round trip, but stays tens of µs.
    assert!(
        t > des::us(18) && t < des::us(80),
        "cross-leaf RTT {}",
        t.pretty()
    );
}

#[test]
fn bbp_multicast_spans_the_hierarchy() {
    let mut sim = Simulation::new();
    let config = BbpConfig::for_nodes(6);
    let layout_words = scramnet_cluster::bbp::Layout::new(&config).total_words();
    let h = hierarchy(&sim, 3, 2, layout_words);
    let mut eps = bbp_endpoints(&h, &config);
    // Root on leaf 0 multicasts to one host on each leaf.
    let r5 = eps.remove(5);
    let r3 = eps.remove(3);
    let r1 = eps.remove(1);
    let mut root = eps.remove(0);
    sim.spawn("root", move |ctx| {
        root.mcast(ctx, &[1, 3, 5], b"hierarchy-wide").unwrap();
    });
    for (name, mut ep) in [("r1", r1), ("r3", r3), ("r5", r5)] {
        sim.spawn(name, move |ctx| {
            assert_eq!(ep.recv(ctx, 0).unwrap(), b"hierarchy-wide");
        });
    }
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
}

#[test]
fn mpi_collectives_across_the_hierarchy() {
    let mut sim = Simulation::new();
    let n = 8;
    let config = BbpConfig::for_nodes(n);
    let layout_words = scramnet_cluster::bbp::Layout::new(&config).total_words();
    let h = hierarchy(&sim, 2, 4, layout_words);
    for rank in 0..n {
        let ep = BbpCluster::endpoint_over(h.nic(rank), rank, config.clone());
        let mut mpi = Mpi::new(
            Box::new(BbpDevice::new(ep)),
            SmpiCosts::channel_interface(),
            CollectiveImpl::Native,
        );
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let comm = mpi.comm_world();
            let data = (mpi.rank() == 0).then_some(&b"over two rings"[..]);
            let out = mpi.bcast(ctx, &comm, 0, data);
            assert_eq!(out, b"over two rings");
            let sum = mpi.allreduce(ctx, &comm, ReduceOp::Sum, &[1.0])[0];
            assert_eq!(sum, n as f64);
            mpi.barrier(ctx, &comm);
        });
    }
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
    assert!(h.conflicts().is_empty());
}
