#![allow(clippy::type_complexity, clippy::needless_range_loop)]

//! Property-based tests of the BillBoard Protocol's delivery guarantees:
//! for arbitrary traffic plans, buffer configurations and payload sizes,
//! every message is delivered exactly once, per-pair FIFO, bytes intact —
//! and the single-writer discipline holds on the wire.

use proptest::prelude::*;
use scramnet_cluster::bbp::{BbpCluster, BbpConfig};
use scramnet_cluster::des::Simulation;
use scramnet_cluster::scramnet::{CostModel, RingConfig};

use std::sync::Arc;

use parking_lot::Mutex;

/// One planned message: sender, receiver, payload seed byte, length.
#[derive(Debug, Clone)]
struct Msg {
    src: usize,
    dst: usize,
    len: usize,
    fill: u8,
}

fn msg_strategy(nprocs: usize, max_len: usize) -> impl Strategy<Value = Msg> {
    (0..nprocs, 0..nprocs - 1, 0..=max_len, any::<u8>()).prop_map(
        move |(src, dst_raw, len, fill)| {
            // Skew dst away from src so it's always a valid peer.
            let dst = if dst_raw >= src { dst_raw + 1 } else { dst_raw };
            Msg {
                src,
                dst,
                len,
                fill,
            }
        },
    )
}

/// The payload for a message: fill byte + per-index pattern, so both
/// truncation and corruption are detectable.
fn payload(m: &Msg, seq_for_pair: usize) -> Vec<u8> {
    (0..m.len)
        .map(|i| {
            m.fill
                .wrapping_add(i as u8)
                .wrapping_add(seq_for_pair as u8)
        })
        .collect()
}

/// Execute a traffic plan and check all delivery guarantees.
fn check_plan(nprocs: usize, bufs: usize, data_words: usize, msgs: Vec<Msg>) {
    let mut cfg = BbpConfig::for_nodes(nprocs);
    cfg.bufs_per_proc = bufs;
    cfg.data_words = data_words;
    let max_payload = cfg.max_payload_bytes();

    // Per-(src,dst) expected FIFO payload queues.
    let mut expected: Vec<Vec<Vec<Vec<u8>>>> = vec![vec![Vec::new(); nprocs]; nprocs];
    let mut sends: Vec<Vec<(usize, Vec<u8>)>> = vec![Vec::new(); nprocs];
    for m in &msgs {
        if m.len > max_payload {
            continue; // plan respects the configured partition size
        }
        let seq = expected[m.src][m.dst].len();
        let p = payload(m, seq);
        expected[m.src][m.dst].push(p.clone());
        sends[m.src].push((m.dst, p));
    }

    let mut sim = Simulation::new();
    let ring_cfg = RingConfig {
        track_provenance: true,
        ..Default::default()
    };
    let cluster = BbpCluster::with_hardware(&sim.handle(), cfg, CostModel::default(), ring_cfg);

    let received: Arc<Mutex<Vec<Vec<(usize, Vec<u8>)>>>> =
        Arc::new(Mutex::new(vec![Vec::new(); nprocs]));
    // Phase-ordered workload, provably livelock-free under GC stalls:
    // in phase `d`, everyone sends their messages destined for `d` while
    // `d` drains. A sender stalled on acknowledgements waits only on `d`,
    // and process 0's first phase is its own drain phase, so the wait
    // chain always bottoms out.
    for rank in 0..nprocs {
        let mut ep = cluster.endpoint(rank);
        let my_sends = std::mem::take(&mut sends[rank]);
        let expect_count: usize = expected.iter().map(|row| row[rank].len()).sum();
        let received = Arc::clone(&received);
        sim.spawn(format!("p{rank}"), move |ctx| {
            for phase in 0..nprocs {
                if phase == rank {
                    for _ in 0..expect_count {
                        let (src, m) = ep.recv_any(ctx).unwrap();
                        received.lock()[rank].push((src, m));
                    }
                } else {
                    for (dst, p) in my_sends.iter().filter(|(d, _)| *d == phase) {
                        ep.send(ctx, *dst, p).unwrap();
                    }
                }
            }
        });
    }
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);

    // Exactly-once + FIFO + integrity.
    let received = received.lock();
    for dst in 0..nprocs {
        let mut got: Vec<Vec<Vec<u8>>> = vec![Vec::new(); nprocs];
        for (src, m) in &received[dst] {
            got[*src].push(m.clone());
        }
        for src in 0..nprocs {
            assert_eq!(
                got[src], expected[src][dst],
                "stream {src}->{dst} differs (count/order/bytes)"
            );
        }
    }
    // Single-writer discipline on the wire.
    assert!(
        cluster.ring().conflicts().is_empty(),
        "single-writer violations: {:?}",
        cluster.ring().conflicts()
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case spins up threads; keep the budget sane
        .. ProptestConfig::default()
    })]

    #[test]
    fn delivery_exactly_once_fifo_intact(
        nprocs in 2usize..5,
        bufs in 2usize..8,
        msgs in prop::collection::vec(msg_strategy(4, 120), 1..40),
    ) {
        let msgs: Vec<Msg> = msgs.into_iter().filter(|m| m.src < nprocs && m.dst < nprocs && m.src != m.dst).collect();
        check_plan(nprocs, bufs, 256, msgs);
    }

    #[test]
    fn delivery_survives_tiny_partitions(
        msgs in prop::collection::vec(msg_strategy(3, 60), 1..30),
    ) {
        // 32-word (128-byte) partitions force constant wrap + GC.
        let msgs: Vec<Msg> = msgs.into_iter().filter(|m| m.src < 3 && m.dst < 3 && m.src != m.dst).collect();
        check_plan(3, 2, 32, msgs);
    }

    #[test]
    fn multicast_fanout_is_exactly_once(
        fanouts in prop::collection::vec((0usize..8, 0usize..16), 1..12),
    ) {
        // Root multicasts a sequence of messages to varying target sets.
        let mut sim = Simulation::new();
        let cluster = BbpCluster::new(&sim.handle(), BbpConfig::for_nodes(4));
        // targets per message: derived from a 2-bit mask over ranks 1-3,
        // always non-empty.
        let plans: Vec<(Vec<usize>, Vec<u8>)> = fanouts
            .iter()
            .enumerate()
            .map(|(i, &(mask, len))| {
                let mut t: Vec<usize> = (1..4).filter(|r| mask & (1 << (r - 1)) != 0).collect();
                if t.is_empty() {
                    t.push(1 + (mask % 3));
                }
                (t, vec![i as u8; len])
            })
            .collect();
        let mut expect_per_rank: Vec<Vec<Vec<u8>>> = vec![Vec::new(); 4];
        for (targets, payload) in &plans {
            for &t in targets {
                expect_per_rank[t].push(payload.clone());
            }
        }
        let mut root = cluster.endpoint(0);
        sim.spawn("root", move |ctx| {
            for (targets, payload) in &plans {
                root.mcast(ctx, targets, payload).unwrap();
            }
        });
        for r in 1..4 {
            let mut ep = cluster.endpoint(r);
            let expect = expect_per_rank[r].clone();
            sim.spawn(format!("r{r}"), move |ctx| {
                for want in &expect {
                    let got = ep.recv(ctx, 0).unwrap();
                    assert_eq!(&got, want, "rank {r} out-of-order or corrupt multicast");
                }
            });
        }
        let report = sim.run();
        prop_assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
    }
}
