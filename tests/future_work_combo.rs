//! The paper's §7 names two directions to cut MPI latency further:
//! remove the Channel Interface (ADI-direct) and add interrupt-driven
//! receives. This test runs them TOGETHER — the stack the authors said
//! they were building next — and checks it is both correct and ordered
//! sensibly against the shipped configuration.

use std::sync::Arc;

use parking_lot::Mutex;
use scramnet_cluster::bbp::{BbpConfig, RecvMode};
use scramnet_cluster::des::{SimHandle, Simulation, Time, TimeExt};
use scramnet_cluster::scramnet::CostModel;
use scramnet_cluster::smpi::{CollectiveImpl, MpiWorld, ReduceOp, SmpiCosts};

fn future_world(h: &SimHandle, n: usize) -> MpiWorld {
    let mut cfg = BbpConfig::for_nodes(n);
    cfg.recv_mode = RecvMode::Interrupt;
    MpiWorld::scramnet_with(
        h,
        cfg,
        CostModel::default(),
        SmpiCosts::adi_direct(),
        CollectiveImpl::Native,
    )
}

#[test]
fn combined_future_stack_is_correct() {
    let mut sim = Simulation::new();
    let world = future_world(&sim.handle(), 4);
    for rank in 0..4 {
        let mut mpi = world.proc(rank);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let comm = mpi.comm_world();
            // Point-to-point ring + collectives, all on interrupts.
            let right = (mpi.rank() + 1) % 4;
            let left = (mpi.rank() + 3) % 4;
            let (_, m) = mpi
                .sendrecv(
                    ctx,
                    &comm,
                    right,
                    1,
                    &[mpi.rank() as u8],
                    Some(left),
                    Some(1),
                )
                .unwrap();
            assert_eq!(m, vec![left as u8]);
            let s = mpi.allreduce(ctx, &comm, ReduceOp::Sum, &[1.0]);
            assert_eq!(s, vec![4.0]);
            mpi.barrier(ctx, &comm);
        });
    }
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
}

#[test]
fn interrupts_eliminate_idle_polling_in_the_mpi_stack() {
    // A receiver that waits 2 ms for a message: under polling it spins
    // PIO reads the whole time; under interrupts the ring sees almost no
    // read traffic while idle.
    let idle_reads = |interrupt: bool| {
        let mut sim = Simulation::new();
        let mut cfg = BbpConfig::for_nodes(2);
        cfg.recv_mode = if interrupt {
            RecvMode::Interrupt
        } else {
            RecvMode::Polling
        };
        let world = MpiWorld::scramnet_with(
            &sim.handle(),
            cfg,
            CostModel::default(),
            SmpiCosts::adi_direct(),
            CollectiveImpl::Native,
        );
        let reads = {
            let mut tx = world.proc(0);
            let mut rx = world.proc(1);
            sim.spawn("tx", move |ctx| {
                let comm = tx.comm_world();
                ctx.wait_until(des::ms(2));
                tx.send(ctx, &comm, 1, 0, b"late").unwrap();
            });
            sim.spawn("rx", move |ctx| {
                let comm = rx.comm_world();
                let _ = rx.recv(ctx, &comm, Some(0), Some(0)).unwrap();
            });
            let report = sim.run();
            assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
            world.bbp_cluster().unwrap().ring().stats().pio_reads
        };
        reads
    };
    let polled = idle_reads(false);
    let interrupted = idle_reads(true);
    assert!(
        interrupted * 20 < polled,
        "interrupt-mode reads ({interrupted}) should be a tiny fraction of polling's ({polled})"
    );
}

#[test]
fn future_stack_beats_the_shipped_stack_on_latency_when_streaming() {
    // For a lone blocking receive the shipped polling stack wins (no
    // interrupt dispatch); but the channel-interface tax dominates, so
    // ADI-direct + interrupts still beats the paper's shipped
    // configuration end-to-end.
    let one_way = |build: &dyn Fn(&SimHandle) -> MpiWorld| {
        let mut sim = Simulation::new();
        let world = build(&sim.handle());
        let done: Arc<Mutex<Time>> = Arc::new(Mutex::new(0));
        let done2 = Arc::clone(&done);
        let mut tx = world.proc(0);
        let mut rx = world.proc(1);
        sim.spawn("tx", move |ctx| {
            let comm = tx.comm_world();
            tx.send(ctx, &comm, 1, 0, b"ping").unwrap();
        });
        sim.spawn("rx", move |ctx| {
            let comm = rx.comm_world();
            let _ = rx.recv(ctx, &comm, Some(0), Some(0)).unwrap();
            *done2.lock() = ctx.now();
        });
        assert!(sim.run().is_clean());
        let t = *done.lock();
        t
    };
    let shipped = one_way(&|h| MpiWorld::scramnet(h, 2));
    let future = one_way(&|h| future_world(h, 2));
    assert!(
        future < shipped,
        "future stack {} should beat the shipped stack {}",
        future.pretty(),
        shipped.pretty()
    );
}
