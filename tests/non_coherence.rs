//! The network's non-coherence, observed and contained: raw concurrent
//! writers can be seen in different orders at different nodes, yet the
//! whole protocol stack (BBP + MPI) never writes one word from two nodes
//! — verified by the wire-level provenance checker under load.

use scramnet_cluster::bbp::{BbpCluster, BbpConfig};
use scramnet_cluster::des::{Simulation, TimeExt};
use scramnet_cluster::scramnet::{CostModel, Ring, RingConfig};
use scramnet_cluster::smpi::{MpiWorld, ReduceOp};

#[test]
fn concurrent_raw_writers_disagree_across_nodes() {
    // Nodes 0 and 2 write the same word at the same virtual instant on a
    // 4-node ring; by ring geometry node 1 applies 0's write first and
    // 2's last, node 3 the reverse — their final values differ.
    let mut sim = Simulation::new();
    let cfg = RingConfig {
        track_provenance: true,
        ..Default::default()
    };
    let ring = Ring::with_config(&sim.handle(), 4, 64, CostModel::default(), cfg);
    let a = ring.nic(0);
    let b = ring.nic(2);
    sim.spawn("w0", move |ctx| a.write_word(ctx, 5, 111));
    sim.spawn("w2", move |ctx| b.write_word(ctx, 5, 222));
    sim.run();
    let finals: Vec<u32> = (0..4).map(|n| ring.snapshot(n)[5]).collect();
    assert!(
        finals.contains(&111) && finals.contains(&222),
        "expected disagreement, got {finals:?}"
    );
    assert!(!ring.conflicts().is_empty());
}

#[test]
fn last_writer_timestamps_reflect_ring_distance() {
    let mut sim = Simulation::new();
    let cfg = RingConfig {
        track_provenance: true,
        ..Default::default()
    };
    let ring = Ring::with_config(&sim.handle(), 6, 64, CostModel::default(), cfg);
    let nic = ring.nic(2);
    sim.spawn("w", move |ctx| nic.write_word(ctx, 9, 1));
    sim.run();
    // Applied times strictly increase with hop distance from node 2.
    let order: Vec<usize> = [3, 4, 5, 0, 1].to_vec();
    let mut last = 0;
    for n in order {
        let t = ring.provenance(n, 9).unwrap().applied_at;
        assert!(
            t > last,
            "node {n} applied at {} not after {}",
            t.pretty(),
            last.pretty()
        );
        last = t;
    }
}

#[test]
fn full_mpi_workload_never_violates_single_writer() {
    // An all-to-all + collectives MPI storm over a provenance-tracked
    // ring: the BillBoard layout must keep every word single-writer.
    let mut sim = Simulation::new();
    let cfg = BbpConfig::for_nodes(4);
    let ring_cfg = RingConfig {
        track_provenance: true,
        ..Default::default()
    };
    let cluster = BbpCluster::with_hardware(&sim.handle(), cfg, CostModel::default(), ring_cfg);
    // Drive MPI over endpoints minted from this tracked cluster by
    // assembling the device stack manually.
    for rank in 0..4 {
        let dev = scramnet_cluster::smpi::BbpDevice::new(cluster.endpoint(rank));
        let mut mpi = scramnet_cluster::smpi::Mpi::new(
            Box::new(dev),
            scramnet_cluster::smpi::SmpiCosts::channel_interface(),
            scramnet_cluster::smpi::CollectiveImpl::Native,
        );
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let comm = mpi.comm_world();
            for round in 0..4u8 {
                let blocks: Vec<Vec<u8>> = (0..4)
                    .map(|d| vec![round.wrapping_add(d as u8); 16])
                    .collect();
                let got = mpi.alltoall(ctx, &comm, &blocks);
                assert_eq!(got.len(), 4);
                let s = mpi.allreduce(ctx, &comm, ReduceOp::Sum, &[1.0]);
                assert_eq!(s, vec![4.0]);
                mpi.barrier(ctx, &comm);
            }
        });
    }
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
    assert!(
        cluster.ring().conflicts().is_empty(),
        "MPI stack violated the single-writer discipline: {:?}",
        cluster.ring().conflicts()
    );
}

#[test]
fn scramnet_world_exposes_ring_for_inspection() {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 2);
    assert!(world.bbp_cluster().is_some());
    assert!(world.tcp_net().is_none());
    let mut mpi = world.proc(0);
    let mut peer = world.proc(1);
    sim.spawn("r0", move |ctx| {
        let comm = mpi.comm_world();
        mpi.send(ctx, &comm, 1, 0, b"traffic").unwrap();
    });
    sim.spawn("r1", move |ctx| {
        let comm = peer.comm_world();
        let _ = peer.recv(ctx, &comm, Some(0), Some(0)).unwrap();
    });
    sim.run();
    let stats = world.bbp_cluster().unwrap().ring().stats();
    assert!(stats.injections > 0);
    assert!(stats.pio_reads > 0);
}
