//! Randomized full-stack stress: seeded sequences of mixed MPI
//! operations (point-to-point storms + every collective) executed over
//! the SCRAMNet device AND over the Fast Ethernet device; the numeric
//! results must agree exactly (the network can only change timing,
//! never values).

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use scramnet_cluster::des::{SimHandle, Simulation};
use scramnet_cluster::smpi::{MpiWorld, ReduceOp};

const RANKS: usize = 4;

/// One step of the generated program.
#[derive(Debug, Clone)]
enum Step {
    RingShift(u8),
    Allreduce(u8),
    Bcast { root: usize, len: usize },
    Alltoall(u8),
    Scan(u8),
    Barrier,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<u8>().prop_map(Step::RingShift),
        any::<u8>().prop_map(Step::Allreduce),
        (0..RANKS, 0usize..300).prop_map(|(root, len)| Step::Bcast { root, len }),
        any::<u8>().prop_map(Step::Alltoall),
        any::<u8>().prop_map(Step::Scan),
        Just(Step::Barrier),
    ]
}

/// Run the program on a world; every rank folds its observations into a
/// checksum, returned per rank.
fn run_program(build: impl Fn(&SimHandle) -> MpiWorld, program: Vec<Step>) -> Vec<u64> {
    let mut sim = Simulation::new();
    let world = build(&sim.handle());
    let sums: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(vec![0; RANKS]));
    let program = Arc::new(program);
    for rank in 0..RANKS {
        let mut mpi = world.proc(rank);
        let program = Arc::clone(&program);
        let sums = Arc::clone(&sums);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let comm = mpi.comm_world();
            let me = comm.rank();
            let mut check: u64 = 0;
            let mut fold = |bytes: &[u8]| {
                for &b in bytes {
                    check = check.wrapping_mul(31).wrapping_add(b as u64);
                }
            };
            for step in program.iter() {
                match step {
                    Step::RingShift(seed) => {
                        let right = (me + 1) % RANKS;
                        let left = (me + RANKS - 1) % RANKS;
                        let payload = [*seed, me as u8];
                        let (_, m) = mpi
                            .sendrecv(ctx, &comm, right, 3, &payload, Some(left), Some(3))
                            .unwrap();
                        fold(&m);
                    }
                    Step::Allreduce(seed) => {
                        let v =
                            mpi.allreduce(ctx, &comm, ReduceOp::Sum, &[*seed as f64 + me as f64]);
                        fold(&v[0].to_le_bytes());
                    }
                    Step::Bcast { root, len } => {
                        let data = (me == *root)
                            .then(|| (0..*len).map(|i| (i ^ root) as u8).collect::<Vec<u8>>());
                        let out = mpi.bcast(ctx, &comm, *root, data.as_deref());
                        fold(&out);
                    }
                    Step::Alltoall(seed) => {
                        let blocks: Vec<Vec<u8>> =
                            (0..RANKS).map(|d| vec![*seed, me as u8, d as u8]).collect();
                        let got = mpi.alltoall(ctx, &comm, &blocks);
                        for g in &got {
                            fold(g);
                        }
                    }
                    Step::Scan(seed) => {
                        let v = mpi.scan(ctx, &comm, ReduceOp::Max, &[*seed as f64, me as f64]);
                        fold(&v[1].to_le_bytes());
                    }
                    Step::Barrier => mpi.barrier(ctx, &comm),
                }
            }
            sums.lock()[me] = check;
        });
    }
    let report = sim.run();
    assert!(
        report.is_clean(),
        "stress deadlocked: {:?}",
        report.deadlocked
    );
    let v = sums.lock().clone();
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    #[test]
    fn scramnet_and_ethernet_compute_identical_results(
        program in prop::collection::vec(step_strategy(), 1..12),
    ) {
        let scr = run_program(|h| MpiWorld::scramnet(h, RANKS), program.clone());
        let eth = run_program(|h| MpiWorld::fast_ethernet(h, RANKS), program.clone());
        prop_assert_eq!(&scr, &eth, "devices disagree for {:?}", program);
        // And the hybrid agrees too.
        let hyb = run_program(|h| MpiWorld::hybrid(h, RANKS, 1024), program.clone());
        prop_assert_eq!(&scr, &hyb, "hybrid disagrees for {:?}", program);
    }
}
