//! The hybrid SCRAMNet+Myrinet world (paper §7's concluding direction):
//! correctness under mixed small/large traffic where frames split across
//! two physical networks, and the best-of-both performance envelope.

use std::sync::Arc;

use parking_lot::Mutex;
use scramnet_cluster::des::{SimHandle, Simulation, Time, TimeExt};
use scramnet_cluster::smpi::{MpiWorld, ReduceOp};

const THRESHOLD: usize = 1024;

#[test]
fn mixed_size_traffic_keeps_mpi_ordering() {
    // Alternating small (fast path) and large (bulk path) messages with
    // the same tag: MPI's non-overtaking rule must survive the split.
    let mut sim = Simulation::new();
    let world = MpiWorld::hybrid(&sim.handle(), 2, THRESHOLD);
    let mut tx = world.proc(0);
    let mut rx = world.proc(1);
    sim.spawn("tx", move |ctx| {
        let comm = tx.comm_world();
        for i in 0..20u32 {
            // Even i: 16-byte message; odd i: 4-KB message.
            let len = if i % 2 == 0 { 16 } else { 4096 };
            let mut payload = vec![(i % 251) as u8; len];
            payload[0..4].copy_from_slice(&i.to_le_bytes());
            tx.send(ctx, &comm, 1, 5, &payload).unwrap();
        }
    });
    sim.spawn("rx", move |ctx| {
        let comm = rx.comm_world();
        for i in 0..20u32 {
            let (_, m) = rx.recv(ctx, &comm, Some(0), Some(5)).unwrap();
            let got = u32::from_le_bytes(m[0..4].try_into().unwrap());
            assert_eq!(got, i, "hybrid split broke FIFO ordering");
            let want_len = if i % 2 == 0 { 16 } else { 4096 };
            assert_eq!(m.len(), want_len);
        }
    });
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
}

#[test]
fn collectives_work_on_the_hybrid_world() {
    let mut sim = Simulation::new();
    let world = MpiWorld::hybrid(&sim.handle(), 4, THRESHOLD);
    for rank in 0..4 {
        let mut mpi = world.proc(rank);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let comm = mpi.comm_world();
            let data = (mpi.rank() == 2).then_some(&[9u8; 100][..]);
            let out = mpi.bcast(ctx, &comm, 2, data);
            assert_eq!(out, vec![9u8; 100]);
            let s = mpi.allreduce(ctx, &comm, ReduceOp::Sum, &[1.0, 2.0]);
            assert_eq!(s, vec![4.0, 8.0]);
            mpi.barrier(ctx, &comm);
        });
    }
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
}

/// One-way MPI latency on a world built by `build`.
fn one_way_us(build: impl Fn(&SimHandle) -> MpiWorld, len: usize) -> f64 {
    let mut sim = Simulation::new();
    let world = build(&sim.handle());
    let done: Arc<Mutex<Time>> = Arc::new(Mutex::new(0));
    let done2 = Arc::clone(&done);
    let payload = vec![1u8; len];
    let mut tx = world.proc(0);
    let mut rx = world.proc(1);
    sim.spawn("tx", move |ctx| {
        let comm = tx.comm_world();
        tx.send(ctx, &comm, 1, 0, &payload).unwrap();
    });
    sim.spawn("rx", move |ctx| {
        let comm = rx.comm_world();
        let _ = rx.recv(ctx, &comm, Some(0), Some(0)).unwrap();
        *done2.lock() = ctx.now();
    });
    let report = sim.run();
    assert!(report.is_clean());
    let t = *done.lock();
    t.as_us()
}

#[test]
fn hybrid_tracks_scramnet_for_small_messages() {
    let hybrid = one_way_us(|h| MpiWorld::hybrid(h, 2, THRESHOLD), 4);
    let scramnet = one_way_us(|h| MpiWorld::scramnet(h, 2), 4);
    // The 5-byte sequencing wrapper costs a little; it must stay small.
    assert!(
        (hybrid - scramnet).abs() < 0.15 * scramnet,
        "hybrid {hybrid:.1} µs should track SCRAMNet {scramnet:.1} µs for short messages"
    );
}

#[test]
fn hybrid_beats_pure_scramnet_for_bulk_messages() {
    let hybrid = one_way_us(|h| MpiWorld::hybrid(h, 2, THRESHOLD), 16 * 1024);
    let scramnet = one_way_us(|h| MpiWorld::scramnet(h, 2), 16 * 1024);
    assert!(
        hybrid < scramnet / 2.0,
        "hybrid {hybrid:.1} µs should be far below pure SCRAMNet {scramnet:.1} µs at 16 KB"
    );
}
