//! Property-based check of MPI message matching: for arbitrary send
//! plans and receive orders (selective by tag), the delivered payloads
//! match a reference model of MPI semantics — per-(source, tag) FIFO
//! with selective matching.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use scramnet_cluster::des::Simulation;
use scramnet_cluster::smpi::MpiWorld;

/// A plan: rank 1 and rank 2 each send a sequence of (tag, payload) to
/// rank 0; rank 0 issues a sequence of receives, each selecting a
/// specific (source, tag). The plan is constructed so every receive has
/// a matching send (counts balance per (source, tag) pair).
#[derive(Debug, Clone)]
struct Plan {
    sends: Vec<Vec<(u32, u8)>>, // sends[s] = list of (tag, fill) from source s+1
    recv_order: Vec<(usize, u32)>, // (source index 0/1, tag)
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    let send_list = prop::collection::vec((0u32..3, any::<u8>()), 1..10);
    (send_list.clone(), send_list, any::<u64>()).prop_map(|(s1, s2, shuffle_seed)| {
        // Receive order: all (source, tag) demands, deterministically
        // shuffled by the seed.
        let mut order: Vec<(usize, u32)> = s1
            .iter()
            .map(|&(t, _)| (0usize, t))
            .chain(s2.iter().map(|&(t, _)| (1usize, t)))
            .collect();
        // Fisher-Yates with a tiny LCG so the order is plan-dependent.
        let mut state = shuffle_seed | 1;
        for i in (1..order.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        Plan {
            sends: vec![s1, s2],
            recv_order: order,
        }
    })
}

/// Reference model: per-(source, tag) FIFO queues.
fn reference(plan: &Plan) -> Vec<Vec<u8>> {
    let mut queues: Vec<Vec<VecDeque<Vec<u8>>>> = vec![vec![VecDeque::new(); 3]; 2];
    for (s, sends) in plan.sends.iter().enumerate() {
        for (i, &(tag, fill)) in sends.iter().enumerate() {
            queues[s][tag as usize].push_back(vec![fill, i as u8, tag as u8]);
        }
    }
    plan.recv_order
        .iter()
        .map(|&(s, tag)| queues[s][tag as usize].pop_front().expect("balanced plan"))
        .collect()
}

fn run_on_mpi(plan: &Plan) -> Vec<Vec<u8>> {
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 3);
    let out = Arc::new(Mutex::new(Vec::new()));
    for src in 0..2usize {
        let sends = plan.sends[src].clone();
        let mut mpi = world.proc(src + 1);
        sim.spawn(format!("s{src}"), move |ctx| {
            let comm = mpi.comm_world();
            for (i, (tag, fill)) in sends.into_iter().enumerate() {
                mpi.send(ctx, &comm, 0, tag, &[fill, i as u8, tag as u8])
                    .unwrap();
            }
        });
    }
    let order = plan.recv_order.clone();
    let mut root = world.proc(0);
    let out2 = Arc::clone(&out);
    sim.spawn("root", move |ctx| {
        let comm = root.comm_world();
        for (s, tag) in order {
            let (status, bytes) = root.recv(ctx, &comm, Some(s + 1), Some(tag)).unwrap();
            assert_eq!(status.source, s + 1);
            assert_eq!(status.tag, tag);
            out2.lock().push(bytes);
        }
    });
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
    let v = out.lock().clone();
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, .. ProptestConfig::default() })]

    #[test]
    fn selective_matching_agrees_with_reference_model(plan in plan_strategy()) {
        let want = reference(&plan);
        let got = run_on_mpi(&plan);
        prop_assert_eq!(got, want);
    }
}

#[test]
fn wildcard_receives_drain_in_arrival_order_per_source() {
    // With ANY_SOURCE/ANY_TAG, per-source FIFO must still hold even
    // though cross-source interleaving is schedule-dependent.
    let mut sim = Simulation::new();
    let world = MpiWorld::scramnet(&sim.handle(), 3);
    for src in 1..3usize {
        let mut mpi = world.proc(src);
        sim.spawn(format!("s{src}"), move |ctx| {
            let comm = mpi.comm_world();
            for i in 0..10u8 {
                mpi.send(ctx, &comm, 0, (src * 7) as u32, &[src as u8, i])
                    .unwrap();
            }
        });
    }
    let mut root = world.proc(0);
    sim.spawn("root", move |ctx| {
        let comm = root.comm_world();
        let mut next = [0u8; 3];
        for _ in 0..20 {
            let (st, m) = root.recv(ctx, &comm, None, None).unwrap();
            assert_eq!(m[0] as usize, st.source);
            assert_eq!(m[1], next[st.source], "per-source FIFO broken");
            next[st.source] += 1;
        }
    });
    let report = sim.run();
    assert!(report.is_clean());
}
