//! Fault injection: node bypass (the dual-ring heal) while protocol
//! traffic is in flight. Survivor pairs must keep full delivery
//! guarantees; the bypassed node's bank silently misses the window.

use scramnet_cluster::bbp::{BbpCluster, BbpConfig};
use scramnet_cluster::des::{ms, Simulation};

#[test]
fn survivors_keep_full_delivery_during_bypass() {
    let mut sim = Simulation::new();
    let cluster = BbpCluster::new(&sim.handle(), BbpConfig::for_nodes(4));
    let ring = cluster.ring().clone();
    // Node 2 drops out between 5 ms and 15 ms.
    let ring_b = ring.clone();
    sim.handle()
        .schedule_at(ms(5), move |_| ring_b.bypass_node(2));
    let ring_r = ring.clone();
    sim.handle()
        .schedule_at(ms(15), move |_| ring_r.rejoin_node(2));

    // 0 streams to 3 across node 2's ring position for 20 ms.
    let mut tx = cluster.endpoint(0);
    sim.spawn("tx", move |ctx| {
        for seq in 0..100u32 {
            tx.send(ctx, 3, &seq.to_le_bytes()).unwrap();
            ctx.advance(200_000); // 200 µs pacing
        }
    });
    let mut rx = cluster.endpoint(3);
    sim.spawn("rx", move |ctx| {
        for seq in 0..100u32 {
            let m = rx.recv(ctx, 0).unwrap();
            assert_eq!(
                u32::from_le_bytes(m.try_into().unwrap()),
                seq,
                "loss or reorder"
            );
        }
    });
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
}

#[test]
fn bypassed_receiver_misses_messages_sent_during_outage() {
    let mut sim = Simulation::new();
    let cluster = BbpCluster::new(&sim.handle(), BbpConfig::for_nodes(3));
    let ring = cluster.ring().clone();
    cluster.ring().bypass_node(2);

    let mut tx = cluster.endpoint(0);
    sim.spawn("tx", move |ctx| {
        tx.send(ctx, 2, b"lost in the void").unwrap();
    });
    let mut rx = cluster.endpoint(2);
    sim.spawn("rx", move |ctx| {
        ctx.wait_until(ms(2));
        assert!(!rx.msg_avail(ctx), "a bypassed node must not see flags");
    });
    let report = sim.run();
    assert!(report.is_clean());
    assert!(ring.is_bypassed(2));
}

#[test]
fn rejoined_node_exchanges_fresh_traffic() {
    // After a rejoin, *new* messages flow normally in both directions.
    let mut sim = Simulation::new();
    let cluster = BbpCluster::new(&sim.handle(), BbpConfig::for_nodes(3));
    let ring = cluster.ring().clone();
    cluster.ring().bypass_node(1);
    sim.handle()
        .schedule_at(ms(1), move |_| ring.rejoin_node(1));

    let mut a = cluster.endpoint(0);
    sim.spawn("a", move |ctx| {
        ctx.wait_until(ms(2)); // after the rejoin
        a.send(ctx, 1, b"welcome back").unwrap();
        let m = a.recv(ctx, 1).unwrap();
        assert_eq!(m, b"thanks");
    });
    let mut b = cluster.endpoint(1);
    sim.spawn("b", move |ctx| {
        let m = b.recv(ctx, 0).unwrap();
        assert_eq!(m, b"welcome back");
        b.send(ctx, 0, b"thanks").unwrap();
    });
    let report = sim.run();
    assert!(report.is_clean(), "deadlocked: {:?}", report.deadlocked);
}

#[test]
fn bypass_shortens_the_detour_hop() {
    // Raw propagation 0→3 with node 2 alive vs bypassed: the bypass
    // switch (80 ns) is faster than a live insertion register (250 ns),
    // so the write lands earlier — matching SCRAMNet's documented
    // behaviour. Measured at the ring level: the saving (~170 ns) is
    // below the BBP's polling granularity.
    use scramnet_cluster::scramnet::{CostModel, Ring, RingConfig};
    let arrival = |bypass: bool| {
        let mut sim = Simulation::new();
        let cfg = RingConfig {
            track_provenance: true,
            ..Default::default()
        };
        let ring = Ring::with_config(&sim.handle(), 4, 64, CostModel::default(), cfg);
        if bypass {
            ring.bypass_node(2);
        }
        let nic = ring.nic(0);
        sim.spawn("tx", move |ctx| nic.write_word(ctx, 7, 1));
        sim.run();
        ring.provenance(3, 7).unwrap().applied_at
    };
    let alive = arrival(false);
    let bypassed = arrival(true);
    let c = scramnet_cluster::scramnet::CostModel::default();
    assert_eq!(
        alive - bypassed,
        c.hop_ns - c.bypass_hop_ns,
        "bypass should save exactly one register's worth of latency"
    );
}
